"""Simulator throughput micro-benchmarks and the engine perf baseline.

Unlike the experiment benches (single pedantic runs of full studies),
these measure the engine's hot path repeatedly, so regressions in the
event loop show up as timing changes:

* dense awake traffic (every node transmits/listens every round) —
  stresses collision resolution;
* sparse awake traffic with huge sleeps — stresses the fast-forward
  scheduler (cost must track awake events, not elapsed rounds);
* a full Algorithm 1 run — the end-to-end common case.

Each scenario is timed against **both** engines — the optimized
:func:`repro.radio.engine.run_protocol` and the frozen seed engine
:func:`repro.radio._engine_reference.run_protocol_reference` — and the
headline metric is their **speedup ratio**.  The ratio is host
independent (both engines run on the same machine in the same process),
which is what makes it usable as a CI regression gate: absolute
milliseconds vary across runners, the ratio does not.

Two entry points:

* ``pytest benchmarks/bench_perf_engine.py`` — the ``test_perf_*``
  functions below, using pytest-benchmark when installed or the plain
  timed-loop fallback fixture from ``conftest.py`` otherwise;
* ``python benchmarks/bench_perf_engine.py [--quick] [--output PATH]
  [--baseline PATH] [--check]`` — standalone CLI that writes
  ``benchmarks/results/BENCH_engine.json`` and can fail on a speedup
  regression versus a checked-in baseline (see ``--max-regression``).
"""

import argparse
import json
import sys
import time
from pathlib import Path

from repro.constants import ConstantsProfile
from repro.core import CDMISProtocol
from repro.faults import ChurnPlan, FaultPlan
from repro.graphs import gnp_random_graph
from repro.radio import CD, Listen, Protocol, Sleep, Transmit, run_protocol
from repro.radio._engine_reference import run_protocol_reference

RESULTS_DIR = Path(__file__).parent / "results"
DEFAULT_OUTPUT = RESULTS_DIR / "BENCH_engine.json"

#: JSON schema tag, bumped on layout changes.
#: /2 adds the ``telemetry_overhead`` section (obs instrumentation cost).
#: /3 adds the ``fault_overhead`` section (no-op FaultPlan fast-path cost).
#: /4 adds the ``batch_throughput`` section (vectorized batch backend vs
#:    per-trial scalar execution on a dense same-cell battery).
#: /5 adds the ``large_n`` section (an E1 cell at n=10^5 on the
#:    phase-based batch path, gated on wall time and peak RSS per node).
#: /6 adds the ``churn_overhead`` section (no-op ChurnPlan static-path
#:    cost: the dynamic-topology layer must not slow churn-free runs).
#: /7 adds the ``multichannel_overhead`` section (a C=1
#:    MultichannelModel wrapper must keep the single-channel fast path).
SCHEMA = "bench-engine/7"

#: Re-measurable report sections (--section re-runs exactly one of these
#: and splices it into the existing report, leaving the rest untouched).
SECTIONS = (
    "scenarios",
    "telemetry_overhead",
    "fault_overhead",
    "churn_overhead",
    "multichannel_overhead",
    "batch_throughput",
    "large_n",
)

#: Ceiling on what the channel dimension may cost single-channel runs:
#: a C=1 :class:`~repro.radio.models.MultichannelModel` wrapper (and,
#: transitively, the channel plumbing in the round loop) must stay
#: within this fraction of the bare single-channel time.  Gated under
#: ``--check`` as an absolute budget, like the large-n limits.
MULTICHANNEL_OVERHEAD_LIMIT = 0.05

#: Acceptance floor for the batched backend: >= 10x single-thread
#: throughput over the scalar engine on the dense same-cell battery
#: (gated under --check with the --max-regression allowance).
BATCH_SPEEDUP_TARGET = 10.0

#: The large-n E1 cell: Algorithm 1 on the sparse gnp workload at
#: n=10^5, run as one batched battery through ``run_trials`` — the same
#: path the claims sweeps take.  The section runs in a subprocess so
#: ``ru_maxrss`` measures exactly this cell's high-water mark.
LARGE_N_NODES = 100_000
LARGE_N_TRIALS = 4
#: Wall-time ceiling for the cell (graph generation + simulation +
#: validation), gated under ``--check``.  Budget chosen ~4x over the
#: measured time on a dev container so slow CI runners pass.
LARGE_N_WALL_LIMIT_S = 240.0
#: Peak incremental memory per node-trial slot, gated under ``--check``.
#: The batch engine's state is a fixed set of int64/uint64 arrays per
#: slot plus the CSR graphs; the budget is ~3x the measured footprint so
#: a Python-object-per-node regression (kilobytes per node) still trips.
LARGE_N_BYTES_PER_SLOT_LIMIT = 2048.0


class DenseTraffic(Protocol):
    """Every node alternates transmit/listen for ``rounds`` rounds."""

    name = "dense-traffic"

    def __init__(self, rounds: int):
        self.rounds = rounds

    def run(self, ctx):
        for index in range(self.rounds):
            if (index + ctx.node) % 2:
                yield Transmit()
            else:
                yield Listen()


class SparseTraffic(Protocol):
    """Each node wakes ``beats`` times, sleeping 10^5 rounds between."""

    name = "sparse-traffic"

    def __init__(self, beats: int):
        self.beats = beats

    def run(self, ctx):
        for _ in range(self.beats):
            yield Sleep(100_000)
            yield Listen()


# ----------------------------------------------------------------------
# Scenario definitions (shared by the pytest functions and the CLI)
# ----------------------------------------------------------------------

def _dense_scenario():
    graph = gnp_random_graph(200, 0.1, seed=1)
    protocol = DenseTraffic(rounds=50)
    params = {"graph": "gnp(200, 0.1, seed=1)", "protocol": "dense-traffic(50)",
              "model": "cd", "seed": 1}
    return graph, protocol, CD, 1, params


def _sparse_scenario():
    graph = gnp_random_graph(100, 0.1, seed=2)
    protocol = SparseTraffic(beats=20)
    params = {"graph": "gnp(100, 0.1, seed=2)", "protocol": "sparse-traffic(20)",
              "model": "cd", "seed": 2}
    return graph, protocol, CD, 2, params


def _algorithm1_scenario():
    graph = gnp_random_graph(256, 8.0 / 255.0, seed=3)
    protocol = CDMISProtocol(constants=ConstantsProfile.practical())
    params = {"graph": "gnp(256, 8/255, seed=3)", "protocol": "cd-mis(practical)",
              "model": "cd", "seed": 3}
    return graph, protocol, CD, 3, params


SCENARIOS = {
    "dense_collision_resolution": _dense_scenario,
    "sleep_fast_forward": _sparse_scenario,
    "algorithm1_end_to_end": _algorithm1_scenario,
}

#: The acceptance microbench: the PR 2 hot-path overhaul targets >= 2x here.
HEADLINE_SCENARIO = "dense_collision_resolution"


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------

def test_perf_dense_collision_resolution(benchmark):
    graph, protocol, model, seed, _ = _dense_scenario()

    result = benchmark(lambda: run_protocol(graph, protocol, model, seed=seed))
    assert result.rounds == 50
    # 200 nodes x 50 awake rounds, all accounted.
    assert result.total_energy == 200 * 50


def test_perf_sleep_fast_forward(benchmark):
    graph, protocol, model, seed, _ = _sparse_scenario()

    result = benchmark(lambda: run_protocol(graph, protocol, model, seed=seed))
    # 2 million simulated rounds, only 20 awake each.
    assert result.rounds == 20 * 100_001
    assert result.max_energy == 20


def test_perf_algorithm1_end_to_end(benchmark, constants):
    graph = gnp_random_graph(256, 8.0 / 255.0, seed=3)
    protocol = CDMISProtocol(constants=constants)

    result = benchmark(lambda: run_protocol(graph, protocol, CD, seed=3))
    assert result.is_valid_mis()


def test_perf_noop_fault_plan(benchmark):
    """Dense traffic with an empty FaultPlan — the fault layer promises
    a zero-overhead fast path (a no-op plan normalizes away before the
    round loop; the CLI bench gates it at --max-fault-overhead)."""
    graph, protocol, model, seed, _ = _dense_scenario()
    plan = FaultPlan()

    result = benchmark(
        lambda: run_protocol(graph, protocol, model, seed=seed, faults=plan)
    )
    assert result.rounds == 50
    assert result == run_protocol(graph, protocol, model, seed=seed)


def test_perf_noop_churn_plan(benchmark):
    """Dense traffic with a default ChurnPlan in the FaultPlan — the
    dynamic-topology layer promises the same zero-overhead fast path as
    the other fault knobs (a churn plan that changes nothing normalizes
    away before the round loop; the CLI bench gates it together with
    --max-fault-overhead)."""
    graph, protocol, model, seed, _ = _dense_scenario()
    plan = FaultPlan(churn=ChurnPlan())

    result = benchmark(
        lambda: run_protocol(graph, protocol, model, seed=seed, faults=plan)
    )
    assert result.rounds == 50
    assert result == run_protocol(graph, protocol, model, seed=seed)


def test_perf_multichannel_single_channel(benchmark):
    """Dense traffic through a C=1 MultichannelModel wrapper — the
    channel layer promises single-channel transparency: same result,
    and near-zero cost (the CLI bench gates the measured fraction)."""
    from repro.radio.models import MultichannelModel

    graph, protocol, model, seed, _ = _dense_scenario()
    wrapped = MultichannelModel(model, 1)

    result = benchmark(lambda: run_protocol(graph, protocol, wrapped, seed=seed))
    assert result.rounds == 50
    assert result == run_protocol(graph, protocol, model, seed=seed)


def test_perf_telemetry_enabled(benchmark):
    """Dense traffic with telemetry on — compare against the plain
    dense scenario to see the instrumentation cost (the CLI bench gates
    it at --max-overhead)."""
    graph, protocol, model, seed, _ = _dense_scenario()

    result = benchmark(
        lambda: run_protocol(graph, protocol, model, seed=seed, telemetry=True)
    )
    tel = result.telemetry
    assert tel is not None
    assert tel.rounds_processed == (
        tel.zero_tx_rounds + tel.one_tx_rounds
        + tel.scatter_dict_rounds + tel.scatter_bincount_rounds
    )


# ----------------------------------------------------------------------
# Standalone CLI
# ----------------------------------------------------------------------

def _best_of(fn, repetitions):
    """Minimum wall time over ``repetitions`` calls (min rejects noise)."""
    best = float("inf")
    for _ in range(repetitions):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


def measure_scenarios(repetitions):
    """Time every scenario on both engines; return the section dict."""
    scenarios = {}
    for name, factory in SCENARIOS.items():
        graph, protocol, model, seed, params = factory()
        # Warm both paths (imports, lazy scatter arrays, allocator).
        run_protocol(graph, protocol, model, seed=seed)
        run_protocol_reference(graph, protocol, model, seed=seed)
        optimized_s = _best_of(
            lambda: run_protocol(graph, protocol, model, seed=seed), repetitions
        )
        reference_s = _best_of(
            lambda: run_protocol_reference(graph, protocol, model, seed=seed),
            repetitions,
        )
        scenarios[name] = {
            "params": params,
            "repetitions": repetitions,
            "optimized_s": round(optimized_s, 6),
            "reference_s": round(reference_s, 6),
            "speedup": round(reference_s / optimized_s, 3),
        }
    return scenarios


def measure(quick=False, sections=None):
    """Measure the requested sections (all by default); return the report."""
    repetitions = 3 if quick else 15
    chosen = SECTIONS if sections is None else tuple(sections)
    report = {
        "schema": SCHEMA,
        "mode": "quick" if quick else "full",
        "python": sys.version.split()[0],
        "headline": HEADLINE_SCENARIO,
    }
    if "scenarios" in chosen:
        report["scenarios"] = measure_scenarios(repetitions)
    if "telemetry_overhead" in chosen:
        report["telemetry_overhead"] = measure_telemetry_overhead(repetitions)
    if "fault_overhead" in chosen:
        report["fault_overhead"] = measure_fault_overhead(repetitions)
    if "churn_overhead" in chosen:
        report["churn_overhead"] = measure_churn_overhead(repetitions)
    if "multichannel_overhead" in chosen:
        report["multichannel_overhead"] = measure_multichannel_overhead(
            repetitions
        )
    if "batch_throughput" in chosen:
        report["batch_throughput"] = measure_batch_throughput(quick=quick)
    if "large_n" in chosen:
        report["large_n"] = measure_large_n(quick=quick)
    return report


def measure_telemetry_overhead(repetitions):
    """Cost of ``telemetry=True`` on the headline dense scenario.

    The obs contract is near-zero overhead: the engine's counters are a
    handful of per-round integer increments, materialized into an
    :class:`EngineTelemetry` only at collection time.  The CLI's
    ``--check --max-overhead`` gates the measured fraction in CI.
    """
    graph, protocol, model, seed, _ = _dense_scenario()
    run_protocol(graph, protocol, model, seed=seed, telemetry=True)  # warm
    disabled_s = _best_of(
        lambda: run_protocol(graph, protocol, model, seed=seed), repetitions
    )
    enabled_s = _best_of(
        lambda: run_protocol(graph, protocol, model, seed=seed, telemetry=True),
        repetitions,
    )
    return {
        "scenario": HEADLINE_SCENARIO,
        "repetitions": repetitions,
        "disabled_s": round(disabled_s, 6),
        "enabled_s": round(enabled_s, 6),
        "overhead_frac": round(enabled_s / disabled_s - 1.0, 4),
    }


def measure_fault_overhead(repetitions):
    """Cost of passing an empty :class:`FaultPlan` on the dense scenario.

    The fault layer's contract is a zero-overhead fast path: a plan
    with nothing configured normalizes to the exact same engine path as
    ``faults=None``, so fault-free runs pay nothing for the injection
    hook.  The CLI's ``--check --max-fault-overhead`` gates the
    measured fraction in CI.
    """
    graph, protocol, model, seed, _ = _dense_scenario()
    plan = FaultPlan()
    run_protocol(graph, protocol, model, seed=seed, faults=plan)  # warm
    no_plan_s = _best_of(
        lambda: run_protocol(graph, protocol, model, seed=seed), repetitions
    )
    noop_plan_s = _best_of(
        lambda: run_protocol(graph, protocol, model, seed=seed, faults=plan),
        repetitions,
    )
    return {
        "scenario": HEADLINE_SCENARIO,
        "repetitions": repetitions,
        "no_plan_s": round(no_plan_s, 6),
        "noop_plan_s": round(noop_plan_s, 6),
        "overhead_frac": round(noop_plan_s / no_plan_s - 1.0, 4),
    }


def measure_churn_overhead(repetitions):
    """Cost of a no-op :class:`ChurnPlan` on the dense scenario.

    The dynamic-topology layer extends the same contract as
    :func:`measure_fault_overhead`: a churn plan that changes nothing
    (``ChurnPlan().is_noop``) normalizes to the exact ``faults=None``
    static fast path, so the churn machinery costs static runs nothing.
    Gated together with ``--check --max-fault-overhead`` in CI.
    """
    graph, protocol, model, seed, _ = _dense_scenario()
    plan = FaultPlan(churn=ChurnPlan())
    run_protocol(graph, protocol, model, seed=seed, faults=plan)  # warm
    no_plan_s = _best_of(
        lambda: run_protocol(graph, protocol, model, seed=seed), repetitions
    )
    noop_churn_s = _best_of(
        lambda: run_protocol(graph, protocol, model, seed=seed, faults=plan),
        repetitions,
    )
    return {
        "scenario": HEADLINE_SCENARIO,
        "repetitions": repetitions,
        "no_plan_s": round(no_plan_s, 6),
        "noop_churn_s": round(noop_churn_s, 6),
        "overhead_frac": round(noop_churn_s / no_plan_s - 1.0, 4),
    }


def measure_multichannel_overhead(repetitions):
    """Cost of a C=1 :class:`MultichannelModel` wrapper on the dense
    scenario.

    The channel subsystem's contract is single-channel transparency:
    wrapping a model at ``channels=1`` keeps the run bit-identical and
    the round loop on its single-channel fast paths (the per-channel
    calendar stays empty, so collision resolution never forks).  The
    measured fraction is gated in CI as an absolute budget at
    :data:`MULTICHANNEL_OVERHEAD_LIMIT` under ``--check``.
    """
    from repro.radio.models import MultichannelModel

    graph, protocol, model, seed, _ = _dense_scenario()
    wrapped = MultichannelModel(model, 1)
    run_protocol(graph, protocol, wrapped, seed=seed)  # warm
    bare_s = _best_of(
        lambda: run_protocol(graph, protocol, model, seed=seed), repetitions
    )
    wrapped_s = _best_of(
        lambda: run_protocol(graph, protocol, wrapped, seed=seed), repetitions
    )
    return {
        "scenario": HEADLINE_SCENARIO,
        "repetitions": repetitions,
        "bare_s": round(bare_s, 6),
        "wrapped_c1_s": round(wrapped_s, 6),
        "overhead_frac": round(wrapped_s / bare_s - 1.0, 4),
        "overhead_limit": MULTICHANNEL_OVERHEAD_LIMIT,
    }


def measure_batch_throughput(quick=False):
    """Batched-backend throughput vs per-trial scalar execution.

    One dense same-cell battery — Algorithm 1 (practical constants) on a
    shared gnp(200, 0.1) topology — is run both ways: the scalar engine
    trial by trial (with validation, as ``run_trials`` would), and the
    vectorized batch engine over the whole battery at once (validation
    included in :func:`repro.radio.batch.engine.run_batch`).  The
    headline is the per-trial throughput ratio, gated at
    ``BATCH_SPEEDUP_TARGET`` under ``--check``.  The section also
    captures one recorded run's ``engine.batch.*`` telemetry counters.
    """
    try:
        import numpy  # noqa: F401
    except ImportError:
        return {"skipped": "numpy unavailable"}
    from repro.analysis.validation import validate_run
    from repro.obs.registry import Registry, recording
    from repro.radio.batch.engine import run_batch

    graph = gnp_random_graph(200, 0.1, seed=7)
    protocol = CDMISProtocol(constants=ConstantsProfile.practical())
    batch_size = 64 if quick else 256
    scalar_trials = 8 if quick else 16
    seeds = list(range(batch_size))

    def scalar_battery():
        for seed in seeds[:scalar_trials]:
            validate_run(run_protocol(graph, protocol, CD, seed=seed))

    def batch_battery():
        run_batch(graph, protocol, CD, seeds)

    batch_battery()  # warm: table compilation, kernel buffers
    scalar_s = _best_of(scalar_battery, 1 if quick else 2)
    batch_s = _best_of(batch_battery, 2 if quick else 3)
    with recording(Registry()) as registry:
        batch_battery()
    counters = {
        name: value
        for name, value in registry.snapshot().get("counters", {}).items()
        if name.startswith("engine.batch.")
    }
    scalar_per_trial = scalar_s / scalar_trials
    batch_per_trial = batch_s / batch_size
    return {
        "params": {
            "graph": "gnp(200, 0.1, seed=7)",
            "protocol": "cd-mis(practical)",
            "model": "cd",
        },
        "batch_size": batch_size,
        "scalar_trials": scalar_trials,
        "scalar_per_trial_s": round(scalar_per_trial, 6),
        "batch_per_trial_s": round(batch_per_trial, 6),
        "speedup": round(scalar_per_trial / batch_per_trial, 3),
        "target_speedup": BATCH_SPEEDUP_TARGET,
        "counters": counters,
    }


def _large_n_worker(payload):
    """Child-process body of the ``large_n`` section.

    Runs one E1-style cell and prints a JSON record including its own
    ``ru_maxrss`` high-water mark.  Running in a fresh interpreter keeps
    the measurement honest: the parent's other sections (reference
    engine, dense batteries) never inflate the peak.
    """
    import resource

    from repro.analysis.runner import run_trials
    from repro.analysis.workloads import build_workload
    from repro.radio.models import CD

    spec = json.loads(payload)
    n, trials = spec["n"], spec["trials"]
    # High-water mark after imports but before any graph exists: the
    # interpreter + numpy baseline, subtracted out of the per-slot cost.
    baseline_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    protocol = CDMISProtocol(constants=ConstantsProfile.practical())
    seeds = list(range(trials))
    start = time.perf_counter()
    summary = run_trials(
        lambda seed: build_workload("gnp", n, seed),
        protocol,
        CD,
        seeds,
        engine="batch",
    )
    wall_s = time.perf_counter() - start
    peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    print(
        json.dumps(
            {
                "wall_s": round(wall_s, 3),
                "baseline_rss_kb": baseline_kb,
                "peak_rss_kb": peak_kb,
                "trials": summary.trials,
                "failures": summary.failures,
            }
        )
    )
    return 0


def measure_large_n(quick=False):
    """The million-node regime's CI anchor: one E1 cell at n=10^5.

    Spawns a subprocess (see :func:`_large_n_worker`) so peak RSS is the
    cell's own.  Reports wall time, incremental peak memory per
    node-trial slot, and the validation outcome; ``--check`` gates the
    first two against :data:`LARGE_N_WALL_LIMIT_S` and
    :data:`LARGE_N_BYTES_PER_SLOT_LIMIT` and fails on any invalid MIS.
    """
    import subprocess

    n = LARGE_N_NODES
    trials = 2 if quick else LARGE_N_TRIALS
    payload = json.dumps({"n": n, "trials": trials})
    proc = subprocess.run(
        [sys.executable, __file__, "--_large-n-worker", payload],
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        return {
            "params": {"n": n, "trials": trials},
            "error": (proc.stderr or proc.stdout).strip()[-2000:],
        }
    record = json.loads(proc.stdout.strip().splitlines()[-1])
    incremental_kb = record["peak_rss_kb"] - record["baseline_rss_kb"]
    bytes_per_slot = 1024.0 * incremental_kb / (n * trials)
    return {
        "params": {
            "workload": f"gnp(n={n}, expected degree 8)",
            "protocol": "cd-mis(practical)",
            "model": "cd",
            "engine": "batch (phased)",
            "n": n,
            "trials": trials,
        },
        "wall_s": record["wall_s"],
        "baseline_rss_kb": record["baseline_rss_kb"],
        "peak_rss_kb": record["peak_rss_kb"],
        "bytes_per_slot": round(bytes_per_slot, 1),
        "failures": record["failures"],
        "wall_limit_s": LARGE_N_WALL_LIMIT_S,
        "bytes_per_slot_limit": LARGE_N_BYTES_PER_SLOT_LIMIT,
    }


def check_regression(report, baseline, max_regression):
    """Compare per-scenario speedups against a baseline report.

    Returns a list of failure messages (empty = pass).  A scenario fails
    when its speedup drops more than ``max_regression`` (fraction) below
    the baseline's — absolute times are host-dependent and not compared.
    """
    failures = []
    for name, entry in baseline.get("scenarios", {}).items():
        current = report["scenarios"].get(name)
        if current is None:
            failures.append(f"{name}: missing from current run")
            continue
        floor = entry["speedup"] * (1.0 - max_regression)
        if current["speedup"] < floor:
            failures.append(
                f"{name}: speedup {current['speedup']:.2f}x fell below "
                f"{floor:.2f}x (baseline {entry['speedup']:.2f}x "
                f"- {max_regression:.0%} allowance)"
            )
    return failures


def main(argv=None):
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv[:1] == ["--_large-n-worker"]:
        return _large_n_worker(argv[1])
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="fewer repetitions; CI smoke mode")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help=f"report path (default: {DEFAULT_OUTPUT})")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_OUTPUT,
                        help="baseline report to compare against with --check")
    parser.add_argument("--check", action="store_true",
                        help="fail if any scenario's speedup regresses past "
                             "--max-regression vs the baseline")
    parser.add_argument("--max-regression", type=float, default=0.30,
                        help="allowed fractional speedup drop (default 0.30)")
    parser.add_argument("--max-overhead", type=float, default=None,
                        metavar="FRAC",
                        help="with --check, also fail if telemetry overhead "
                             "exceeds this fraction (e.g. 0.05 for 5%%)")
    parser.add_argument("--max-fault-overhead", type=float, default=None,
                        metavar="FRAC",
                        help="with --check, also fail if a no-op FaultPlan "
                             "costs more than this fraction over faults=None")
    parser.add_argument("--section", choices=SECTIONS, default=None,
                        help="re-measure only this report section and splice "
                             "it into the existing --output file, leaving the "
                             "other sections untouched")
    args = parser.parse_args(argv)

    baseline = None
    if args.check:
        # Read before writing: output and baseline may be the same file.
        baseline = json.loads(args.baseline.read_text())

    if args.section is not None:
        if not args.output.exists():
            print(
                f"--section requires an existing report at {args.output} "
                f"to splice into; run once without --section first",
                file=sys.stderr,
            )
            return 2
        report = json.loads(args.output.read_text())
        fresh = measure(quick=args.quick, sections=[args.section])
        report[args.section] = fresh[args.section]
        report["schema"] = SCHEMA
    else:
        report = measure(quick=args.quick)

    for name, entry in report.get("scenarios", {}).items():
        marker = "  <- headline" if name == HEADLINE_SCENARIO else ""
        print(
            f"{name}: optimized {entry['optimized_s'] * 1e3:.2f}ms  "
            f"reference {entry['reference_s'] * 1e3:.2f}ms  "
            f"speedup {entry['speedup']:.2f}x{marker}"
        )

    overhead = report.get("telemetry_overhead")
    if overhead is not None:
        print(
            f"telemetry overhead: disabled {overhead['disabled_s'] * 1e3:.2f}ms  "
            f"enabled {overhead['enabled_s'] * 1e3:.2f}ms  "
            f"overhead {overhead['overhead_frac']:+.1%}"
        )
    fault_overhead = report.get("fault_overhead")
    if fault_overhead is not None:
        print(
            f"noop-fault overhead: none {fault_overhead['no_plan_s'] * 1e3:.2f}ms  "
            f"noop plan {fault_overhead['noop_plan_s'] * 1e3:.2f}ms  "
            f"overhead {fault_overhead['overhead_frac']:+.1%}"
        )
    churn_overhead = report.get("churn_overhead")
    if churn_overhead is not None:
        print(
            f"noop-churn overhead: none {churn_overhead['no_plan_s'] * 1e3:.2f}ms  "
            f"noop churn {churn_overhead['noop_churn_s'] * 1e3:.2f}ms  "
            f"overhead {churn_overhead['overhead_frac']:+.1%}"
        )
    mc_overhead = report.get("multichannel_overhead")
    if mc_overhead is not None:
        print(
            f"c1-wrapper overhead: bare {mc_overhead['bare_s'] * 1e3:.2f}ms  "
            f"wrapped {mc_overhead['wrapped_c1_s'] * 1e3:.2f}ms  "
            f"overhead {mc_overhead['overhead_frac']:+.1%} "
            f"(limit {mc_overhead['overhead_limit']:.0%})"
        )
    batch = report.get("batch_throughput")
    if batch is not None and "speedup" in batch:
        print(
            f"batch throughput: scalar "
            f"{batch['scalar_per_trial_s'] * 1e3:.2f}ms/trial  batch "
            f"{batch['batch_per_trial_s'] * 1e3:.2f}ms/trial "
            f"(B={batch['batch_size']})  speedup {batch['speedup']:.2f}x "
            f"(target {batch['target_speedup']:.0f}x)"
        )
    large_n = report.get("large_n")
    if large_n is not None and "wall_s" in large_n:
        print(
            f"large_n: n={large_n['params']['n']} x "
            f"{large_n['params']['trials']} trials in "
            f"{large_n['wall_s']:.1f}s (limit {large_n['wall_limit_s']:.0f}s)"
            f"  peak {large_n['bytes_per_slot']:.0f} B/slot "
            f"(limit {large_n['bytes_per_slot_limit']:.0f})  "
            f"failures {large_n['failures']}"
        )
    elif large_n is not None and "error" in large_n:
        print(f"large_n: FAILED\n{large_n['error']}", file=sys.stderr)

    args.output.parent.mkdir(exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    if baseline is not None:
        failures = check_regression(report, baseline, args.max_regression)
        if args.max_overhead is not None and overhead is not None:
            # Gated against the current run only (no baseline needed, so
            # pre-/2 baselines without the section still work).
            if overhead["overhead_frac"] > args.max_overhead:
                failures.append(
                    f"telemetry overhead {overhead['overhead_frac']:.1%} "
                    f"exceeds --max-overhead {args.max_overhead:.1%}"
                )
        if args.max_fault_overhead is not None and fault_overhead is not None:
            if fault_overhead["overhead_frac"] > args.max_fault_overhead:
                failures.append(
                    f"noop fault-plan overhead "
                    f"{fault_overhead['overhead_frac']:.1%} exceeds "
                    f"--max-fault-overhead {args.max_fault_overhead:.1%}"
                )
        if args.max_fault_overhead is not None and churn_overhead is not None:
            # Same contract, same flag: a no-op churn plan is just
            # another no-op fault plan as far as the static path goes.
            if churn_overhead["overhead_frac"] > args.max_fault_overhead:
                failures.append(
                    f"noop churn-plan overhead "
                    f"{churn_overhead['overhead_frac']:.1%} exceeds "
                    f"--max-fault-overhead {args.max_fault_overhead:.1%}"
                )
        if mc_overhead is not None:
            # An absolute budget (like the large-n limits): the channel
            # subsystem shipped with a <= 5% single-channel promise, so
            # the gate doesn't depend on a post-/7 baseline existing.
            if mc_overhead["overhead_frac"] > MULTICHANNEL_OVERHEAD_LIMIT:
                failures.append(
                    f"multichannel_overhead: C=1 wrapper costs "
                    f"{mc_overhead['overhead_frac']:.1%}, over the "
                    f"{MULTICHANNEL_OVERHEAD_LIMIT:.0%} budget"
                )
        if batch is not None and "speedup" in batch:
            # An absolute floor, not a baseline delta: the batched
            # backend's acceptance criterion is >= 10x single-thread
            # throughput, softened by the regression allowance.
            floor = BATCH_SPEEDUP_TARGET * (1.0 - args.max_regression)
            if batch["speedup"] < floor:
                failures.append(
                    f"batch_throughput: speedup {batch['speedup']:.2f}x fell "
                    f"below {floor:.2f}x (target "
                    f"{BATCH_SPEEDUP_TARGET:.0f}x - "
                    f"{args.max_regression:.0%} allowance)"
                )
        if large_n is not None:
            # Absolute budgets (like the batch floor): the section exists
            # to keep the n=10^5 regime affordable, so a silently slower
            # or fatter path must fail CI rather than drift.
            if "wall_s" not in large_n:
                failures.append(
                    f"large_n: cell crashed: {large_n.get('error', '?')[:500]}"
                )
            else:
                if large_n["wall_s"] > LARGE_N_WALL_LIMIT_S:
                    failures.append(
                        f"large_n: wall {large_n['wall_s']:.1f}s exceeds "
                        f"{LARGE_N_WALL_LIMIT_S:.0f}s budget"
                    )
                if large_n["bytes_per_slot"] > LARGE_N_BYTES_PER_SLOT_LIMIT:
                    failures.append(
                        f"large_n: peak {large_n['bytes_per_slot']:.0f} "
                        f"bytes/slot exceeds "
                        f"{LARGE_N_BYTES_PER_SLOT_LIMIT:.0f} budget"
                    )
                if large_n["failures"]:
                    failures.append(
                        f"large_n: {large_n['failures']} invalid MIS "
                        f"trial(s) at n={large_n['params']['n']}"
                    )
        if failures:
            for failure in failures:
                print(f"REGRESSION {failure}", file=sys.stderr)
            return 1
        print(f"regression check passed (allowance {args.max_regression:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
