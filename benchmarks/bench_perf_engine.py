"""Simulator throughput micro-benchmarks.

Unlike the experiment benches (single pedantic runs of full studies),
these measure the engine's hot path repeatedly, so regressions in the
event loop show up as timing changes:

* dense awake traffic (every node transmits/listens every round) —
  stresses collision resolution;
* sparse awake traffic with huge sleeps — stresses the fast-forward
  scheduler (cost must track awake events, not elapsed rounds);
* a full Algorithm 1 run — the end-to-end common case.
"""

from repro.core import CDMISProtocol
from repro.graphs import gnp_random_graph
from repro.radio import CD, Listen, Protocol, Sleep, Transmit, run_protocol


class DenseTraffic(Protocol):
    """Every node alternates transmit/listen for ``rounds`` rounds."""

    name = "dense-traffic"

    def __init__(self, rounds: int):
        self.rounds = rounds

    def run(self, ctx):
        for index in range(self.rounds):
            if (index + ctx.node) % 2:
                yield Transmit()
            else:
                yield Listen()


class SparseTraffic(Protocol):
    """Each node wakes ``beats`` times, sleeping 10^5 rounds between."""

    name = "sparse-traffic"

    def __init__(self, beats: int):
        self.beats = beats

    def run(self, ctx):
        for _ in range(self.beats):
            yield Sleep(100_000)
            yield Listen()


def test_perf_dense_collision_resolution(benchmark):
    graph = gnp_random_graph(200, 0.1, seed=1)
    protocol = DenseTraffic(rounds=50)

    result = benchmark(lambda: run_protocol(graph, protocol, CD, seed=1))
    assert result.rounds == 50
    # 200 nodes x 50 awake rounds, all accounted.
    assert result.total_energy == 200 * 50


def test_perf_sleep_fast_forward(benchmark):
    graph = gnp_random_graph(100, 0.1, seed=2)
    protocol = SparseTraffic(beats=20)

    result = benchmark(lambda: run_protocol(graph, protocol, CD, seed=2))
    # 2 million simulated rounds, only 20 awake each.
    assert result.rounds == 20 * 100_001
    assert result.max_energy == 20


def test_perf_algorithm1_end_to_end(benchmark, constants):
    graph = gnp_random_graph(256, 8.0 / 255.0, seed=3)
    protocol = CDMISProtocol(constants=constants)

    result = benchmark(lambda: run_protocol(graph, protocol, CD, seed=3))
    assert result.is_valid_mis()
