"""E11 — Delta-parametrization at fixed n (Theorem 10, Section 4.2).

Fixed n, growing degree bound Delta on bounded-degree random graphs.
Rounds of both no-CD algorithms grow with log Delta (their slot counts
do), while Algorithm 2's *energy* growth in Delta is slower than the
Davies-style baseline's: committed nodes listen against the
kappa*log n estimate instead of Delta — the asymmetry that delivers
the paper's O(log^2 n loglog n) energy.
"""

from repro.analysis.experiments import run_delta_sweep

N = 128
DELTAS = (4, 8, 16, 32, 64)


def test_e11_delta_sweep(benchmark, constants, save_report):
    report = benchmark.pedantic(
        lambda: run_delta_sweep(n=N, deltas=DELTAS, trials=4, constants=constants),
        rounds=1,
        iterations=1,
    )

    algo2_rounds = report.series("nocd-energy-mis", "rounds_mean")
    davies_rounds = report.series("davies-low-degree-mis", "rounds_mean")
    # Rounds grow with Delta for both (log Delta slot counts).
    assert algo2_rounds[-1] > algo2_rounds[0]
    assert davies_rounds[-1] > davies_rounds[0]

    # Energy growth across the Delta sweep: Algorithm 2's relative growth
    # stays below the Davies-style baseline's.
    algo2_energy = report.series("nocd-energy-mis", "max_energy_mean")
    davies_energy = report.series("davies-low-degree-mis", "max_energy_mean")
    algo2_growth = algo2_energy[-1] / algo2_energy[0]
    davies_growth = davies_energy[-1] / davies_energy[0]
    assert algo2_growth < davies_growth

    save_report("e11_delta_sweep", report.to_table())
