"""E1 — the headline complexity table (Section 1.3 / Theorems 2 and 10).

Regenerates the paper's summary-of-results as measurements at a
reference size: every algorithm's worst-case energy and rounds, next to
its claimed asymptotic, plus the improvement factors the paper
advertises (Algorithm 1 vs naive CD Luby on energy; Algorithm 2's energy
below the naive no-CD bill).
"""

from repro.analysis.experiments import run_headline_table


def test_e1_headline_table(benchmark, constants, save_report):
    report = benchmark.pedantic(
        lambda: run_headline_table(n=128, trials=4, constants=constants),
        rounds=1,
        iterations=1,
    )
    by_name = {row.protocol: row for row in report.rows}

    # Shape checks (who wins): Algorithm 1 beats naive Luby on energy,
    # ties it on rounds; Algorithm 2 beats the naive no-CD bill.
    assert (
        by_name["cd-mis"].max_energy_mean < by_name["naive-cd-luby"].max_energy_mean
    )
    assert (
        by_name["nocd-energy-mis"].max_energy_mean
        < by_name["naive-backoff-mis"].max_energy_mean
    )
    # The beeping variant matches the CD algorithm exactly.
    assert by_name["beeping-mis"].max_energy_mean == by_name["cd-mis"].max_energy_mean

    save_report("e1_headline", report.to_table())
