"""CHURN — MIS repair cost under dynamic-topology edge churn.

The paper's guarantees hold on a static graph; the churn fault layer
(:mod:`repro.faults.churn`) extends the simulator with topology drift
and local MIS repair.  This bench runs the repair-cost-vs-rate study
(:func:`repro.analysis.experiments.churn.run_churn_study`) and persists
the table to ``benchmarks/results/churn_repair.txt`` — the acceptance
artifact for the dynamic-graph extension: repair cost must grow with
the churn rate while the network keeps restabilizing to a valid MIS of
the final graph.
"""

from repro.analysis.experiments.churn import run_churn_study

N = 64
TRIALS = 6
RATES = (0.0, 0.02, 0.08, 0.2)


def test_churn_repair_cost(benchmark, constants, save_report):
    report = benchmark.pedantic(
        lambda: run_churn_study(n=N, trials=TRIALS, rates=RATES, constants=constants),
        rounds=1,
        iterations=1,
    )

    for family in ("gnp", "bounded-deg"):
        cells = report.cells(family)
        assert [row[1] for row in cells] == list(RATES)
        # No churn: nothing to repair, everything valid, and the zero
        # row anchors the growth comparison below.
        _, _, events0, valid0, restab0, repair0, _, _ = cells[0]
        assert events0 == 0 and repair0 == 0.0
        assert valid0 == 1.0 and restab0 == 1.0
        # Repair cost grows with the churn rate: the heaviest cell
        # repairs strictly more than the lightest nonzero one.
        assert cells[-1][5] > cells[1][5]
        # The final scan keeps restabilization high even at the
        # heaviest rate — degradation, not collapse.
        assert all(row[4] >= 0.5 for row in cells)

    save_report("churn_repair", report.to_table())
