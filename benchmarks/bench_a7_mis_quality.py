"""A7 — output quality: how large are the MISs each algorithm finds?

MIS algorithms guarantee maximality, not maximum size; different
processes still land in a narrow size band on the same graph.  This
bench compares output sizes of every MIS implementation in the library
(radio, message-passing, idealized, centralized) on a common workload,
plus a planted-independent-set graph where a large independent
structure exists to be found.

No claim of the paper rides on this — it is the quality-due-diligence a
release needs: energy efficiency must not come at the cost of
degenerate outputs (it does not: Algorithm 1/2 sizes match Luby's, as
they run the same process).
"""

import random

from repro.analysis.stats import summarize
from repro.analysis.tables import render_table
from repro.baselines import (
    SenderCDBeepingMISProtocol,
    ghaffari_mis,
    greedy_mis,
    luby_mis,
)
from repro.core import CDMISProtocol, NoCDEnergyMISProtocol
from repro.graphs import gnp_random_graph, planted_independent_set_graph
from repro.msgpass import DistributedMetivierProtocol, run_message_passing
from repro.radio import BEEPING_SENDER_CD, CD, NO_CD, run_protocol

N = 128
TRIALS = 8


def _sizes_on(graph_factory, constants):
    sizes = {}

    def record(name, size_list):
        sizes[name] = summarize(size_list)

    radio_cd, radio_nocd, beep, metivier, luby_sizes, ghaffari_sizes, greedy_sizes = (
        [], [], [], [], [], [], []
    )
    for seed in range(TRIALS):
        graph = graph_factory(seed)
        result = run_protocol(
            graph, CDMISProtocol(constants=constants), CD, seed=seed
        )
        assert result.is_valid_mis()
        radio_cd.append(len(result.mis))

        result = run_protocol(
            graph, NoCDEnergyMISProtocol(constants=constants), NO_CD, seed=seed
        )
        assert result.is_valid_mis()
        radio_nocd.append(len(result.mis))

        result = run_protocol(
            graph,
            SenderCDBeepingMISProtocol(constants=constants),
            BEEPING_SENDER_CD,
            seed=seed,
        )
        assert result.is_valid_mis()
        beep.append(len(result.mis))

        msg = run_message_passing(
            graph, DistributedMetivierProtocol(constants=constants), seed=seed
        )
        assert msg.is_valid_mis()
        metivier.append(len(msg.mis))

        luby_sizes.append(len(luby_mis(graph, seed=seed).mis))
        ghaffari_sizes.append(len(ghaffari_mis(graph, seed=seed).mis))
        greedy_sizes.append(len(greedy_mis(graph, rng=random.Random(seed))))

    record("cd-mis", radio_cd)
    record("nocd-energy-mis", radio_nocd)
    record("sender-cd-beep-mis", beep)
    record("distributed-metivier", metivier)
    record("luby-ideal", luby_sizes)
    record("ghaffari-ideal", ghaffari_sizes)
    record("greedy", greedy_sizes)
    return sizes


def test_a7_mis_quality(benchmark, constants, save_report):
    def measure():
        random_graph = _sizes_on(
            lambda seed: gnp_random_graph(N, 8.0 / (N - 1), seed=seed), constants
        )
        planted = _sizes_on(
            lambda seed: planted_independent_set_graph(
                N, N // 3, 0.25, seed=seed
            ),
            constants,
        )
        return random_graph, planted

    random_graph, planted = benchmark.pedantic(measure, rounds=1, iterations=1)

    # All algorithms land in a narrow band on the same workload.
    means = [summary.mean for summary in random_graph.values()]
    assert max(means) <= 1.35 * min(means)

    # The planted workload is degree-skewed (planted nodes have no
    # internal edges, hence lower degree), which separates the
    # processes: rank-based ones (Luby and its radio descendants) are
    # degree-blind and land ~15-21, while Ghaffari's degree-adaptive
    # desire dynamics favor the planted nodes and find ~35 — a genuine
    # structural difference this bench records.  Everyone clears the
    # universal n/(Delta+1) domination floor.
    from repro.graphs import mis_size_bounds, planted_independent_set_graph as gen

    floor, _ = mis_size_bounds(gen(N, N // 3, 0.25, seed=0))
    planted_means = [summary.mean for summary in planted.values()]
    assert min(planted_means) >= floor
    assert planted["ghaffari-ideal"].mean >= planted["luby-ideal"].mean

    def table(title, sizes):
        return render_table(
            ["algorithm", "mean |MIS|", "min", "max"],
            [
                (name, summary.mean, summary.minimum, summary.maximum)
                for name, summary in sizes.items()
            ],
            title=title,
        )

    save_report(
        "a7_mis_quality",
        table(f"A7 MIS sizes on G(n={N}, deg~8)", random_graph)
        + "\n\n"
        + table(f"A7 MIS sizes on planted({N}, {N // 3}, 0.25)", planted),
    )
