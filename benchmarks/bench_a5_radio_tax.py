"""A5 — the "radio tax": what collisions cost versus reliable broadcast.

The same Luby process runs on both substrates:

* message-passing CONGEST (`repro.msgpass`): reliable broadcast, ranks
  exchanged in one round — 2 rounds per phase;
* radio CD (`repro.core.CDMISProtocol`): ranks must be compared
  bit-by-bit through a collision channel — ``beta log n + 1`` rounds per
  phase.

The per-phase round ratio is the price of the radio model's contention,
and it is exactly the Theta(log n) factor separating the CONGEST and
radio-CD MIS round complexities (O(log n) vs O(log^2 n)).  Phase counts
themselves coincide (both are Luby processes), which this bench also
checks.
"""

from repro.analysis.tables import render_table
from repro.core import CDMISProtocol
from repro.graphs import gnp_random_graph
from repro.msgpass import DistributedLubyProtocol, run_message_passing
from repro.radio import CD, run_protocol

N = 256
TRIALS = 8


def _measure(constants):
    rows = []
    for seed in range(TRIALS):
        graph = gnp_random_graph(N, 8.0 / (N - 1), seed=seed)

        msg_result = run_message_passing(
            graph, DistributedLubyProtocol(constants=constants), seed=seed
        )
        msg_phases = max(
            info["phases_participated"] for info in msg_result.node_info
        )

        radio_result = run_protocol(
            graph, CDMISProtocol(constants=constants), CD, seed=seed
        )
        phase_length = constants.rank_bits(N) + 1
        radio_phases = radio_result.rounds // phase_length

        rows.append(
            {
                "seed": seed,
                "msg_valid": msg_result.is_valid_mis(),
                "radio_valid": radio_result.is_valid_mis(),
                "msg_rounds": msg_result.rounds,
                "radio_rounds": radio_result.rounds,
                "msg_phases": msg_phases,
                "radio_phases": radio_phases,
            }
        )
    return rows


def test_a5_radio_tax(benchmark, constants, save_report):
    rows = benchmark.pedantic(lambda: _measure(constants), rounds=1, iterations=1)

    assert all(row["msg_valid"] and row["radio_valid"] for row in rows)
    mean_msg_phases = sum(row["msg_phases"] for row in rows) / len(rows)
    mean_radio_phases = sum(row["radio_phases"] for row in rows) / len(rows)
    # Same Luby process: phase counts in the same ballpark.
    assert abs(mean_msg_phases - mean_radio_phases) <= 3.0
    # The tax: rounds per phase blow up by ~(beta log n + 1) / 2.
    tax = (
        sum(row["radio_rounds"] for row in rows)
        / max(1, sum(row["msg_rounds"] for row in rows))
    )
    expected_tax = (constants.rank_bits(N) + 1) / 2.0
    assert 0.4 * expected_tax <= tax <= 2.5 * expected_tax

    table = render_table(
        ["seed", "msg rounds", "radio rounds", "msg phases", "radio phases"],
        [
            (row["seed"], row["msg_rounds"], row["radio_rounds"],
             row["msg_phases"], row["radio_phases"])
            for row in rows
        ],
        title=(
            f"A5 radio tax (n={N}): measured round ratio "
            f"{tax:.1f}x vs (beta log n + 1)/2 = {expected_tax:.1f}x"
        ),
    )
    save_report("a5_radio_tax", table)
