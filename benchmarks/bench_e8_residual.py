"""E8 — residual-graph shrinkage per Luby phase (Lemmas 5 and 20).

Measures |E_i| / |E_{i-1}| across phases for Algorithm 1 (residual =
undecided nodes), Algorithm 2 (residual = non-OUT nodes, Definition 18),
and idealized Luby as the reference process.  Lemma 5 claims expected
ratio <= 1/2 for the CD algorithm; Lemma 20 claims <= 63/64 for the
no-CD algorithm.
"""

from repro.analysis.experiments import run_residual_shrinkage
from repro.graphs import gnp_random_graph


def test_e8_residual_shrinkage(benchmark, constants, save_report):
    graphs = [gnp_random_graph(192, 0.05, seed=s) for s in (1, 2, 3)]
    report = benchmark.pedantic(
        lambda: run_residual_shrinkage(graphs, seeds=range(4), constants=constants),
        rounds=1,
        iterations=1,
    )

    # Lemma 5: mean per-phase edge ratio <= 1/2 (+ sampling slack).
    assert report.mean_ratio("cd-mis") <= 0.55
    assert report.mean_ratio("luby-ideal") <= 0.55
    # Lemma 20: strict expected contraction for Algorithm 2's residual.
    nocd_ratio = report.mean_ratio("nocd-energy-mis")
    assert 0.0 < nocd_ratio <= 63.0 / 64.0 + 0.02

    save_report("e8_residual", report.to_table())
