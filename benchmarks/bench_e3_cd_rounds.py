"""E3 — CD-model round scaling: O(log^2 n) (Theorem 2).

Both Algorithm 1 and the naive baseline share the same phase structure,
so their round complexities coincide at O(log^2 n); the sweep checks the
polylog shape and that the two curves agree.
"""

from repro.analysis.experiments.scaling import (
    cd_protocol_suite,
    run_scaling_comparison,
)
from repro.radio import CD

SIZES = (64, 128, 256, 512, 1024, 2048)


def test_e3_cd_round_scaling(benchmark, constants, save_report):
    report = benchmark.pedantic(
        lambda: run_scaling_comparison(
            SIZES, cd_protocol_suite(constants), CD, trials=6
        ),
        rounds=1,
        iterations=1,
    )

    fit = report.sweeps["cd-mis"].fit("rounds_mean")
    # Polylog, not polynomial: at n=2048 a linear dependence would give
    # rounds in the thousands; log^2 stays in the hundreds.
    last = report.sweeps["cd-mis"].points[-1]
    assert last.rounds_mean < last.n
    assert fit.exponent < 3.0
    # Hard upper bound: phases * (bits + 1) with the profile's constants.
    for point in report.sweeps["cd-mis"].points:
        ceiling = constants.luby_phases(point.n) * (constants.rank_bits(point.n) + 1)
        assert point.rounds_max <= ceiling

    text = (
        report.metric_table("rounds_mean", "rounds")
        + "\n\n"
        + report.fits_table("rounds_mean")
    )
    save_report("e3_cd_rounds", text)
