"""Shared helpers for the benchmark/experiment harness.

Each benchmark regenerates one experiment from DESIGN.md's index (the
paper is a theory-only brief announcement, so the "tables and figures"
are its quantitative claims).  Every bench:

* times the underlying experiment via pytest-benchmark, and
* prints + persists the regenerated table under ``benchmarks/results/``
  so EXPERIMENTS.md can cite the exact output.

Run:  pytest benchmarks/ --benchmark-only -s
"""

import importlib.util
import time
from pathlib import Path

import pytest

from repro.constants import ConstantsProfile

RESULTS_DIR = Path(__file__).parent / "results"


if importlib.util.find_spec("pytest_benchmark") is None:
    # Plain timed-loop stand-in so the benches still *run* (as smoke
    # tests with coarse timings) where the plugin isn't installed.  Same
    # calling convention: ``benchmark(fn)`` executes ``fn`` and returns
    # its result.
    @pytest.fixture
    def benchmark(request):
        def _bench(fn, *args, **kwargs):
            best = float("inf")
            result = None
            for _ in range(3):
                start = time.perf_counter()
                result = fn(*args, **kwargs)
                best = min(best, time.perf_counter() - start)
            print(f"\n[timed-loop fallback] {request.node.name}: "
                  f"best of 3 = {best * 1e3:.2f}ms")
            return result

        return _bench


@pytest.fixture(scope="session")
def constants():
    """All benchmarks use the practical profile (recorded in outputs)."""
    return ConstantsProfile.practical()


@pytest.fixture(scope="session")
def save_report():
    """Persist a rendered report and echo it to stdout."""

    def _save(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _save
