"""Shared helpers for the benchmark/experiment harness.

Each benchmark regenerates one experiment from DESIGN.md's index (the
paper is a theory-only brief announcement, so the "tables and figures"
are its quantitative claims).  Every bench:

* times the underlying experiment via pytest-benchmark, and
* prints + persists the regenerated table under ``benchmarks/results/``
  so EXPERIMENTS.md can cite the exact output.

Run:  pytest benchmarks/ --benchmark-only -s
"""

from pathlib import Path

import pytest

from repro.constants import ConstantsProfile

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def constants():
    """All benchmarks use the practical profile (recorded in outputs)."""
    return ConstantsProfile.practical()


@pytest.fixture(scope="session")
def save_report():
    """Persist a rendered report and echo it to stdout."""

    def _save(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _save
