"""Campaign-service load benchmark (and CI gate).

Starts a real ``repro-mis serve`` subprocess on an ephemeral port with a
fresh cache, then measures the three service-level acceptance criteria:

1. **warm-path throughput** — concurrent clients submitting duplicate
   jobs must be served >= ``--min-throughput`` cached-or-deduped trial
   units per second (default 1000/s);
2. **duplicate-sweep speedup** — a second identical sweep must finish
   >= ``--min-speedup`` times faster than the cold run (default 10x),
   with every unit served from cache;
3. **bit-identity** — the service's outcome records must be
   byte-for-byte what the in-process ``run_trials`` path produces for
   the same cells.

Exits non-zero if any gate fails; writes the measurements to
``benchmarks/results/BENCH_service.json``.

Run:  PYTHONPATH=src python benchmarks/bench_service_load.py [--quick]
"""

import argparse
import json
import re
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
RESULTS_PATH = REPO_ROOT / "benchmarks" / "results" / "BENCH_service.json"

sys.path.insert(0, str(SRC))

from repro.service.client import ServiceClient  # noqa: E402

READY_PATTERN = re.compile(r"listening on http://([\d.]+):(\d+)")


class ServeProcess:
    """A ``repro-mis serve`` subprocess on an ephemeral port."""

    def __init__(self, cache_dir: Path, workers: int):
        env = {"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"}
        self.proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--port",
                "0",
                "--cache-dir",
                str(cache_dir),
                "--workers",
                str(workers),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        deadline = time.monotonic() + 30
        self.url = None
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                break
            match = READY_PATTERN.search(line)
            if match:
                self.url = f"http://{match.group(1)}:{match.group(2)}"
                return
        self.stop()
        raise RuntimeError("service did not print its readiness line")

    def stop(self):
        if self.proc.poll() is None:
            try:
                ServiceClient(self.url, timeout=5).shutdown()
                self.proc.wait(timeout=10)
            except Exception:
                self.proc.kill()
                self.proc.wait(timeout=10)


def phase_cold_and_duplicate(client, spec):
    """Cold sweep, then the identical sweep; returns both timings."""
    start = time.perf_counter()
    job = client.submit("sweep", spec, client="bench-cold")
    cold_result = client.wait(job["id"], timeout=600)
    cold_s = time.perf_counter() - start

    start = time.perf_counter()
    dup = client.submit("sweep", spec, client="bench-dup")
    dup_result = client.wait(dup["id"], timeout=60)
    dup_s = time.perf_counter() - start

    descriptor = client.status(dup["id"])
    total = descriptor["total_units"]
    served_warm = descriptor["cached_units"] + descriptor["deduped_units"]
    return {
        "cold_s": cold_s,
        "duplicate_s": dup_s,
        "speedup": cold_s / dup_s if dup_s > 0 else float("inf"),
        "total_units": total,
        "warm_units": served_warm,
        "cold_result": cold_result,
        "duplicate_result": dup_result,
    }


def phase_throughput(url, spec, submissions, threads):
    """Concurrent duplicate submissions; returns units/s served warm."""

    def one(i):
        client = ServiceClient(url, timeout=60)
        job = client.submit("sweep", spec, client=f"bench-tp-{i % 8}")
        result_job = client.wait(job["id"], timeout=60)["job"]
        return (
            result_job["total_units"],
            result_job["cached_units"] + result_job["deduped_units"],
        )

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=threads) as pool:
        outcomes = list(pool.map(one, range(submissions)))
    elapsed = time.perf_counter() - start
    units = sum(total for total, _ in outcomes)
    warm = sum(w for _, w in outcomes)
    return {
        "submissions": submissions,
        "threads": threads,
        "elapsed_s": elapsed,
        "units": units,
        "warm_units": warm,
        "units_per_s": units / elapsed if elapsed > 0 else float("inf"),
    }


def phase_bit_identity(service_result, spec):
    """Recompute one cell in-process and compare records byte-for-byte."""
    from repro.analysis.runner import _outcome_to_record, run_trials
    from repro.analysis.workloads import build_workload
    from repro.cli import _DEFAULT_MODEL, _PROFILES, _PROTOCOLS
    from repro.radio.models import model_by_name

    protocol = _PROTOCOLS[spec["algorithm"]](_PROFILES["practical"]())
    model = model_by_name(_DEFAULT_MODEL[spec["algorithm"]])
    mismatches = 0
    for cell in service_result["cells"]:
        n = cell["n"]
        summary = run_trials(
            lambda g, n=n: build_workload(spec["topology"], n, g),
            protocol,
            model,
            cell["seeds"],
            jobs=1,
            cache=False,
            graph_spec=f"workload:{spec['topology']}/n={n}",
            faults=False,
            policy=False,
        )
        local = [_outcome_to_record(o) for o in summary.outcomes]
        remote = cell["outcomes"]
        if json.dumps(local, sort_keys=True) != json.dumps(
            remote, sort_keys=True
        ):
            mismatches += 1
    return {"cells": len(service_result["cells"]), "mismatches": mismatches}


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI scale: small sweep, fewer submissions"
    )
    parser.add_argument("--min-throughput", type=float, default=1000.0)
    parser.add_argument("--min-speedup", type=float, default=10.0)
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args(argv)

    if args.quick:
        spec = {
            "algorithm": "beeping-mis",
            "topology": "gnp",
            "sizes": [16, 24],
            "trials": 5,
            "seed": 0,
        }
        submissions, threads = 40, 8
    else:
        spec = {
            "algorithm": "beeping-mis",
            "topology": "gnp",
            "sizes": [32, 64, 96],
            "trials": 10,
            "seed": 0,
        }
        submissions, threads = 150, 12

    with tempfile.TemporaryDirectory(prefix="repro-bench-service-") as tmp:
        server = ServeProcess(Path(tmp) / "cache", args.workers)
        try:
            client = ServiceClient(server.url, timeout=120)
            warm = phase_cold_and_duplicate(client, spec)
            throughput = phase_throughput(server.url, spec, submissions, threads)
            identity = phase_bit_identity(warm["cold_result"], spec)
            stats = client.stats()
        finally:
            server.stop()

    report = {
        "spec": spec,
        "cold_s": round(warm["cold_s"], 4),
        "duplicate_s": round(warm["duplicate_s"], 4),
        "speedup": round(warm["speedup"], 2),
        "throughput": {
            k: round(v, 4) if isinstance(v, float) else v
            for k, v in throughput.items()
        },
        "bit_identity": identity,
        "service_counters": {
            k: v
            for k, v in stats["counters"].items()
            if k.startswith("service.")
        },
        "gates": {
            "min_throughput_units_per_s": args.min_throughput,
            "min_duplicate_speedup": args.min_speedup,
        },
    }
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    print(f"cold sweep          : {report['cold_s']:.3f}s ({warm['total_units']} units)")
    print(f"duplicate sweep     : {report['duplicate_s']:.3f}s "
          f"({warm['warm_units']}/{warm['total_units']} served warm)")
    print(f"duplicate speedup   : {report['speedup']:.1f}x (gate: >={args.min_speedup}x)")
    print(f"warm throughput     : {throughput['units_per_s']:.0f} units/s "
          f"(gate: >={args.min_throughput:.0f}/s; {throughput['units']} units "
          f"over {throughput['elapsed_s']:.2f}s, {threads} client threads)")
    print(f"bit identity        : {identity['cells'] - identity['mismatches']}"
          f"/{identity['cells']} cells identical to in-process run_trials")
    print(f"results written to  : {RESULTS_PATH.relative_to(REPO_ROOT)}")

    failures = []
    if warm["warm_units"] != warm["total_units"]:
        failures.append(
            f"duplicate sweep computed {warm['total_units'] - warm['warm_units']} "
            "unit(s) instead of serving them warm"
        )
    if warm["speedup"] < args.min_speedup:
        failures.append(
            f"duplicate speedup {warm['speedup']:.1f}x < {args.min_speedup}x"
        )
    if throughput["units_per_s"] < args.min_throughput:
        failures.append(
            f"throughput {throughput['units_per_s']:.0f}/s < {args.min_throughput:.0f}/s"
        )
    if identity["mismatches"]:
        failures.append(
            f"{identity['mismatches']} cell(s) not bit-identical to run_trials"
        )
    if failures:
        for failure in failures:
            print(f"GATE FAILED: {failure}", file=sys.stderr)
        return 1
    print("all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
