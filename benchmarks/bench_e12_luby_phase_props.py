"""E12 — per-phase competition lemmas (14, 15, Corollary 13) + ablation.

Instrumented Algorithm 2 runs, inspecting every Luby phase:

* Lemma 15 — winner sets are independent (no adjacent winner pairs),
* Corollary 13 — committed sets induce subgraphs of degree <= kappa log n,
* Lemma 14 — local-maximum participants win.  As printed, the
  pseudocode lets a committed-but-beaten node keep transmitting its
  1-bits, so a local maximum can be talked out of 'win' and into
  'commit' (decided the same phase via LowDegreeMIS — Lemma 16 — so
  correctness holds).  The ablation run mutes beaten committed nodes
  and restores the literal Lemma 14 rate to ~1.
"""

from repro.analysis.experiments import run_luby_phase_properties
from repro.graphs import gnp_random_graph


def _rate(counts):
    if not counts.local_maxima:
        return 1.0
    return counts.local_maxima_that_won / counts.local_maxima


def test_e12_luby_phase_properties(benchmark, constants, save_report):
    graphs = [gnp_random_graph(192, 0.05, seed=s) for s in (1, 2)]

    def run_both():
        plain = run_luby_phase_properties(graphs, seeds=range(3), constants=constants)
        muted = run_luby_phase_properties(
            graphs, seeds=range(3), constants=constants, mute_committed_on_hear=True
        )
        return plain, muted

    plain, muted = benchmark.pedantic(run_both, rounds=1, iterations=1)

    # Lemma 15: no adjacent winners (w.h.p. at these sizes: none at all).
    assert plain.counts.adjacent_winner_pairs == 0
    # Lemma 11: adjacent committed nodes commit in the same bitty phase.
    if plain.counts.adjacent_committed_pairs:
        lemma11_rate = (
            plain.counts.adjacent_committed_same_bit
            / plain.counts.adjacent_committed_pairs
        )
        assert lemma11_rate >= 0.95
    # Corollary 13: committed-induced degree within kappa log n.
    assert plain.counts.committed_degree_violations == 0
    assert plain.counts.max_committed_degree <= plain.kappa_log_n
    # Lemma 14: high win rate as printed; ~1 with the muting ablation.
    assert _rate(plain.counts) >= 0.75
    assert _rate(muted.counts) >= 0.97
    assert _rate(muted.counts) >= _rate(plain.counts)

    text = (
        plain.to_table()
        + f"\n\nablation (mute committed-after-hear): Lemma 14 rate "
        f"{_rate(plain.counts):.4f} -> {_rate(muted.counts):.4f}"
    )
    save_report("e12_luby_phase_props", text)
