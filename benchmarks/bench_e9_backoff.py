"""E9 — the backoff primitives' guarantees (Lemmas 8 and 9).

Sweeps (k, sender-count) on a star: receiver hearing rate must dominate
Lemma 9's 1 - (7/8)^k at every cell, sender energy must equal exactly k
(Lemma 8's asymmetry), and receiver energy must stay within the
k * ceil(log Delta_est) envelope.
"""

from repro.analysis.experiments import run_backoff_experiment
from repro.core.backoff import backoff_slots

DELTA = 64


def test_e9_backoff_guarantees(benchmark, constants, save_report):
    report = benchmark.pedantic(
        lambda: run_backoff_experiment(
            delta=DELTA,
            k_values=(1, 2, 4, 8, 16, 32),
            sender_counts=(1, 8, 32, 64),
            trials=150,
        ),
        rounds=1,
        iterations=1,
    )

    for point in report.points:
        # Lemma 9 with 3-sigma sampling slack at 150 trials (~0.12).
        assert point.heard_rate >= point.lemma9_bound - 0.12
        # Lemma 8: sender awake exactly k rounds.
        assert point.sender_energy == point.k
        # Receiver awake at most k * slots rounds.
        assert point.receiver_energy <= point.k * backoff_slots(DELTA)
    # A lone sender is heard essentially always (no collisions possible).
    lone = [p for p in report.points if p.senders == 1]
    assert all(p.heard_rate >= 0.99 for p in lone)

    save_report("e9_backoff", report.to_table())
