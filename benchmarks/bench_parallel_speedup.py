"""Parallel trial-executor speedup benchmark.

Measures the same trial battery three ways and records the comparison
under ``benchmarks/results/parallel_speedup.txt``:

* ``jobs=1`` — the sequential reference;
* ``jobs=cpu_count`` — the fork-pool executor (on a multi-core host the
  acceptance target is >1.5x on 4 cores; a single-core container
  records ~1x, which the table states explicitly);
* a cached re-run — the second identical battery must complete with
  100% cache hits, which is where campaign-scale re-runs get their real
  speedup regardless of core count.

Outcome equality between all three configurations is asserted, not just
timed: parallel and cached results are bit-identical to sequential.

Run directly (no pytest-benchmark fixture needed):

    PYTHONPATH=src python -m pytest benchmarks/bench_parallel_speedup.py -s
"""

import multiprocessing
import time

from repro.analysis.runner import run_trials
from repro.core import CDMISProtocol
from repro.exec.cache import ResultCache
from repro.graphs import gnp_random_graph
from repro.radio import CD
from repro.analysis.tables import render_table

TRIALS = 24
N = 128


def _battery(protocol, **kwargs):
    factory = lambda seed: gnp_random_graph(N, 8.0 / (N - 1), seed=seed)  # noqa: E731
    start = time.perf_counter()
    summary = run_trials(
        factory, protocol, CD, range(TRIALS),
        graph_spec=f"bench:gnp/n={N}", **kwargs,
    )
    return summary, time.perf_counter() - start


def test_parallel_speedup(save_report, constants, tmp_path):
    protocol = CDMISProtocol(constants=constants)
    cores = multiprocessing.cpu_count()
    jobs = max(2, cores)

    sequential, t_seq = _battery(protocol, jobs=1)
    parallel, t_par = _battery(protocol, jobs=jobs)
    assert parallel.outcomes == sequential.outcomes

    cache_root = tmp_path / "speedup-cache"
    _, t_cold = _battery(protocol, jobs=jobs, cache=ResultCache(cache_root))
    warm_cache = ResultCache(cache_root)
    cached, t_warm = _battery(protocol, jobs=jobs, cache=warm_cache)
    assert cached.outcomes == sequential.outcomes
    assert warm_cache.stats.hits == TRIALS and warm_cache.stats.misses == 0

    rows = [
        ("sequential (jobs=1)", t_seq, 1.0),
        (f"pool (jobs={jobs})", t_par, t_seq / t_par),
        (f"pool+cache cold (jobs={jobs})", t_cold, t_seq / t_cold),
        ("cache warm (100% hits)", t_warm, t_seq / t_warm),
    ]
    table = render_table(
        ["configuration", "seconds", "speedup vs sequential"],
        rows,
        title=(
            f"parallel executor speedup ({TRIALS} trials, n={N}, "
            f"{cores} core(s) available)"
        ),
    )
    note = (
        "note: pool speedup needs multiple physical cores; "
        "the >1.5x acceptance target applies to a 4-core host."
        if cores < 2
        else ""
    )
    save_report("parallel_speedup", table + ("\n" + note if note else ""))

    # The cache-warm path does no simulation at all, so it beats the
    # sequential reference on any machine.
    assert t_warm < t_seq
