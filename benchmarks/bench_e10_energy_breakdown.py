"""E10 — Algorithm 2's per-component energy ledger (Figure 2's classes).

Figure 2 color-codes the algorithm's stages by energy class.  The
instrumented protocol tags every awake round; this bench aggregates the
ledger and checks the orderings the classes imply at laptop scale:
competition listening and LowDegreeMIS dominate, shallow checks are
near-free, deep checks sit in between.
"""

from repro.analysis.experiments import run_energy_breakdown
from repro.graphs import gnp_random_graph


def test_e10_energy_breakdown(benchmark, constants, save_report):
    graphs = [gnp_random_graph(192, 0.05, seed=s) for s in (1, 2)]
    report = benchmark.pedantic(
        lambda: run_energy_breakdown(graphs, seeds=range(3), constants=constants),
        rounds=1,
        iterations=1,
    )

    worst = {row.component: row.worst_node_rounds for row in report.rows}
    # The two O(log^2 n ...) classes dominate the per-node worst case.
    heavy = max(worst["competition-listen"], worst["low-degree-mis"])
    assert heavy >= worst["deep-check"]
    assert worst["deep-check"] > worst["shallow-check"]
    # Shallow announces are O(1) per phase: tiny next to everything else.
    assert worst["mis-announce-shallow"] * 10 <= report.worst_total

    save_report("e10_energy_breakdown", report.to_table())
