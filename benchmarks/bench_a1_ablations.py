"""A1 — ablations of Algorithm 2's two design insights (§5.1).

DESIGN.md calls out two load-bearing choices; each gets switched off:

* **Commitment (§5.1.1)** — ``enable_commit=False``: nodes never drop
  their degree estimate and never run LowDegreeMIS.  Expected effect:
  the energy's Delta-dependence reappears (committed listening is pinned
  to kappa*log n; uncommitted listening pays ceil(log Delta) slots).
  At laptop scale the commit machinery's constant overhead (LowDegreeMIS
  inside every phase) outweighs its absolute savings — the honest
  measurable signature is the *growth rate in Delta*, not the level.
* **Shallow checks (§5.1.2)** — ``shallow_iterations = C' log n``:
  every loser deep-listens every phase.  Expected effect: a flat energy
  surcharge at every Delta, with no correctness gain.

All variants must stay correct — the ablations trade energy, not
validity.
"""

from repro.analysis.runner import run_trials
from repro.analysis.tables import render_table
from repro.core import NoCDEnergyMISProtocol
from repro.graphs import random_bounded_degree_graph
from repro.radio import NO_CD

N = 128
DELTAS = (4, 16, 64)
TRIALS = 5


def _variants(constants):
    deep = constants.deep_check_iterations(N)
    return {
        "default": NoCDEnergyMISProtocol(constants=constants),
        "no-commit": NoCDEnergyMISProtocol(constants=constants, enable_commit=False),
        "always-deep": NoCDEnergyMISProtocol(
            constants=constants, shallow_iterations=deep
        ),
    }


def _sweep(constants):
    rows = {}
    for name, protocol in _variants(constants).items():
        series = []
        failures = 0
        for delta in DELTAS:
            summary = run_trials(
                lambda seed, d=delta: random_bounded_degree_graph(N, d, seed=seed),
                protocol,
                NO_CD,
                seeds=range(TRIALS),
            )
            failures += summary.failures
            series.append(summary.max_energy_summary().mean)
        rows[name] = (series, failures)
    return rows


def test_a1_design_ablations(benchmark, constants, save_report):
    rows = benchmark.pedantic(lambda: _sweep(constants), rounds=1, iterations=1)

    default_series, default_failures = rows["default"]
    no_commit_series, no_commit_failures = rows["no-commit"]
    always_deep_series, always_deep_failures = rows["always-deep"]

    # Ablations trade energy, never validity.
    assert default_failures == no_commit_failures == always_deep_failures == 0

    # §5.1.1: commitment flattens the Delta-dependence of energy.
    default_growth = default_series[-1] / default_series[0]
    no_commit_growth = no_commit_series[-1] / no_commit_series[0]
    assert no_commit_growth > default_growth + 0.1

    # §5.1.2: always-deep checking is a strict energy surcharge.
    for always_deep, default in zip(always_deep_series, default_series):
        assert always_deep > default

    table = render_table(
        ["variant", *(f"maxE(D={d})" for d in DELTAS), "growth D4->D64"],
        [
            (name, *series, series[-1] / series[0])
            for name, (series, _) in rows.items()
        ],
        title=f"A1 Algorithm 2 design ablations (n={N})",
    )
    save_report("a1_ablations", table)
