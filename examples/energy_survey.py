#!/usr/bin/env python
"""Energy survey: who should you deploy, and when?

Compares every algorithm in the library across network sizes and both
collision models, printing the energy/round trade-off tables a
practitioner would consult:

* CD model — Algorithm 1 vs naive Luby (Theta(log n) vs Theta(log^2 n)),
* no-CD model — Algorithm 2 vs the Davies-style round-efficient
  algorithm vs the naive backoff simulation,
* the Delta-dependence at fixed n, where Algorithm 2's advantage shows:
  its listening cost is pinned to the committed degree estimate
  kappa*log n while the baselines pay log Delta everywhere.

Run:  python examples/energy_survey.py          (takes ~a minute)
"""

from repro import ConstantsProfile
from repro.analysis.experiments import run_delta_sweep, run_scaling_comparison
from repro.analysis.experiments.scaling import (
    cd_protocol_suite,
    nocd_protocol_suite,
)
from repro.radio import CD, NO_CD


def main() -> None:
    constants = ConstantsProfile.practical()

    print("== CD model: energy-optimal vs naive ==")
    report = run_scaling_comparison(
        sizes=(64, 128, 256, 512),
        suite=cd_protocol_suite(constants),
        model=CD,
        trials=5,
    )
    print(report.metric_table("max_energy_mean", "worst-case energy"))
    print()
    print(report.fits_table("max_energy_mean"))
    ratios = report.ratio_series("naive-cd-luby", "cd-mis")
    print(
        "\nnaive/optimal energy ratio by n: "
        + ", ".join(f"{ratio:.2f}" for ratio in ratios)
        + "   (grows ~log n, as Theorem 2 predicts)"
    )

    print("\n== no-CD model: Algorithm 2 vs Davies-style vs naive ==")
    report = run_scaling_comparison(
        sizes=(32, 64, 128),
        suite=nocd_protocol_suite(constants),
        model=NO_CD,
        trials=3,
    )
    print(report.metric_table("max_energy_mean", "worst-case energy"))
    print()
    print(report.metric_table("rounds_mean", "rounds"))

    print("\n== Delta sweep at fixed n: where the energy win lives ==")
    delta_report = run_delta_sweep(
        n=96, deltas=(4, 8, 16, 32), trials=3, constants=constants
    )
    print(delta_report.to_table())
    print(
        "\nAlgorithm 2's energy should stay nearly flat in Delta while the\n"
        "round-efficient baseline's grows with log Delta — the asymmetry\n"
        "that buys the paper its O(log^2 n loglog n) energy bound."
    )


if __name__ == "__main__":
    main()
