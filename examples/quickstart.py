#!/usr/bin/env python
"""Quickstart: compute an MIS over a simulated radio network.

Builds a random network, runs the paper's two headline algorithms —
Algorithm 1 in the collision-detection model and Algorithm 2 in the
harsher no-CD model — validates both outputs, and prints the energy and
round bills that are the paper's whole point.

Run:  python examples/quickstart.py
"""

from repro import (
    CD,
    NO_CD,
    CDMISProtocol,
    ConstantsProfile,
    NoCDEnergyMISProtocol,
    run_protocol,
)
from repro.analysis import validate_run
from repro.graphs import gnp_random_graph


def main() -> None:
    # A 256-node "arbitrary and unknown topology" network.  Nodes know
    # only the upper bounds n and Delta, never the graph.
    graph = gnp_random_graph(256, p=0.03, seed=42)
    constants = ConstantsProfile.practical()
    print(f"network: {graph.name}, max degree {graph.max_degree()}")

    # --- Algorithm 1: energy-optimal MIS with collision detection -----
    result = run_protocol(graph, CDMISProtocol(constants=constants), CD, seed=7)
    report = validate_run(result)
    print("\nAlgorithm 1 (CD model):")
    print(f"  {report.describe()}")
    print(f"  rounds: {result.rounds}   (paper: O(log^2 n))")
    print(f"  worst-case energy: {result.max_energy} awake rounds (paper: O(log n))")
    print(f"  node-averaged energy: {result.mean_energy:.1f} awake rounds")

    # --- Algorithm 2: energy-efficient MIS without collision detection -
    result = run_protocol(
        graph, NoCDEnergyMISProtocol(constants=constants), NO_CD, seed=7
    )
    report = validate_run(result)
    print("\nAlgorithm 2 (no-CD model):")
    print(f"  {report.describe()}")
    print(f"  rounds: {result.rounds}   (paper: O(log^3 n log Delta))")
    print(
        f"  worst-case energy: {result.max_energy} awake rounds "
        "(paper: O(log^2 n loglog n))"
    )
    print("  energy by component (worst node):")
    for component, rounds in sorted(
        result.max_energy_by_component().items(), key=lambda item: -item[1]
    ):
        print(f"    {component:>22}: {rounds}")


if __name__ == "__main__":
    main()
