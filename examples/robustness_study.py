#!/usr/bin/env python
"""Robustness study: what happens when the model's assumptions slip?

The paper's guarantees assume a fault-free network and synchronous
wake-up.  This example drives the registered ``ROBUST`` experiment
(:func:`repro.analysis.experiments.run_robustness_study`), which uses
the :mod:`repro.faults` injection layer to measure degradation when
those assumptions fail:

1. **crash-stop faults** — a growing fraction of nodes crash mid-run,
2. **crash–recovery faults** — crashed nodes restart with fresh state
   after a delay,
3. **wake-up skew** — nodes start up to ``s`` rounds apart,
4. **channel noise** — receptions are erased with probability ``p``.

The same study runs from the CLI (``repro-mis experiment robust``); this
script adds the interpretive commentary.

Run:  python examples/robustness_study.py
"""

from repro import ConstantsProfile
from repro.analysis.experiments import run_robustness_study


def main() -> None:
    report = run_robustness_study(
        n=96, trials=8, constants=ConstantsProfile.practical()
    )
    print(report.to_table())

    print(
        "\ncrash-stop faults degrade *coverage* — survivors whose only\n"
        "dominator crashed already retired OUT and never recover — but\n"
        "rarely create adjacent MIS pairs among survivors: independence\n"
        "is sturdy.  With crash-recovery, restarted nodes rerun their\n"
        "full phase calendar, so coverage returns at a measurable\n"
        "energy and stabilization-time cost.\n"
    )
    print(
        "even small wake-up skew is fatal for Algorithm 1 — an early\n"
        "winner can confirm and terminate before a late neighbor wakes,\n"
        "and the neighbor then wins its own (empty) competition.  This\n"
        "is the measured reason the paper assumes synchronous wake-up.\n"
        "Channel noise maps the margin against an imperfect channel:\n"
        "a few lost messages are survivable, sustained loss is not."
    )


if __name__ == "__main__":
    main()
