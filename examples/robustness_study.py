#!/usr/bin/env python
"""Robustness study: what happens when the model's assumptions slip?

The paper's guarantees assume a fault-free network and synchronous
wake-up.  This example uses the simulator's injection knobs to measure
degradation when those assumptions fail:

1. **crash faults** — a growing fraction of nodes crash-stop mid-run;
   we measure whether the surviving output is still independent and how
   much of the surviving network it dominates,
2. **wake-up skew** — nodes start up to ``s`` rounds apart; we measure
   the failure rate as skew grows (it collapses fast — the measured
   justification for the synchronous wake-up assumption).

Run:  python examples/robustness_study.py
"""

from repro import (
    CD,
    CDMISProtocol,
    ConstantsProfile,
    NO_CD,
    NoCDEnergyMISProtocol,
    run_protocol,
)
from repro.analysis.tables import render_table
from repro.graphs import gnp_random_graph


def crash_study(constants, n=96, trials=8):
    # Algorithm 2 is the interesting crash target: its MIS nodes stay
    # alive announcing until the very last phase, so crashing them
    # mid-run strands neighbors that already retired OUT believing they
    # were dominated.  (Algorithm 1's winners terminate the instant they
    # confirm — there is no window in which killing them changes
    # anything, and its survivor coverage stays 1.0.)
    protocol = NoCDEnergyMISProtocol(constants=constants)
    probe = gnp_random_graph(n, 8.0 / (n - 1), seed=0)
    crash_round = protocol.schedule_for(n, probe.max_degree()).total_rounds // 3
    rows = []
    for crash_fraction in (0.0, 0.1, 0.25, 0.5):
        coverage_total = 0.0
        independent_runs = 0
        for seed in range(trials):
            graph = gnp_random_graph(n, 8.0 / (n - 1), seed=seed)
            crash_count = int(crash_fraction * n)
            crash_schedule = {node: crash_round for node in range(crash_count)}
            result = run_protocol(
                graph,
                protocol,
                NO_CD,
                seed=seed,
                crash_schedule=crash_schedule,
            )
            coverage_total += result.surviving_coverage()
            if result.surviving_mis_independent():
                independent_runs += 1
        rows.append(
            (
                f"{100 * crash_fraction:.0f}%",
                independent_runs / trials,
                coverage_total / trials,
            )
        )
    return rows


def skew_study(constants, n=128, trials=10):
    rows = []
    for skew in (0, 1, 2, 4, 8, 32):
        failures = 0
        for seed in range(trials):
            graph = gnp_random_graph(n, 8.0 / (n - 1), seed=seed)
            wake = {
                node: ((seed + 1) * 48271 * (node + 1)) % (skew + 1)
                for node in graph.nodes
            }
            result = run_protocol(
                graph,
                CDMISProtocol(constants=constants),
                CD,
                seed=seed,
                wake_schedule=wake,
            )
            if not result.is_valid_mis():
                failures += 1
        rows.append((skew, failures / trials))
    return rows


def main() -> None:
    constants = ConstantsProfile.practical()

    print(
        render_table(
            ["crashed nodes", "independence preserved", "survivor coverage"],
            crash_study(constants),
            title="Algorithm 2 under crash-stop faults (crash a third into the run)",
        )
    )
    print(
        "\ncrashes degrade *coverage* — survivors whose only dominator\n"
        "crashed already retired OUT and never recover — but never create\n"
        "adjacent MIS pairs among survivors: independence is sturdy.\n"
    )

    print(
        render_table(
            ["max wake skew", "failure rate"],
            skew_study(constants),
            title="Algorithm 1 under wake-up skew",
        )
    )
    print(
        "\neven small skew is fatal — an early winner can confirm and\n"
        "terminate before a late neighbor wakes, and the neighbor then\n"
        "wins its own (empty) competition.  This is the measured reason\n"
        "the paper assumes synchronous wake-up."
    )


if __name__ == "__main__":
    main()
