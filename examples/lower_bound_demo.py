#!/usr/bin/env python
"""Theorem 1, live: why MIS needs Omega(log n) energy.

Runs energy-budgeted strategies on the hard instance — n/4 disjoint
edges plus n/2 isolated nodes — and shows the failure probability
collapsing only once the per-node budget passes ~log n awake rounds,
exactly as the lower bound dictates.  Also truncates the paper's own
Algorithm 1 to a budget to show a *real* algorithm hitting the same
wall.

Run:  python examples/lower_bound_demo.py
"""

from repro.analysis.tables import render_table
from repro.lowerbound import (
    EnergyCappedCDMIS,
    SynchronizedCoinStrategy,
    min_budget_for_success,
    run_lower_bound_experiment,
)


def main() -> None:
    n = 256
    budgets = [1, 2, 3, 4, 5, 6, 8, 10, 12, 16]
    trials = 80

    print(f"hard instance: n={n} ({n // 4} matched pairs, {n // 2} isolated)")
    print(
        f"Theorem 1: beating failure 1-e^(-1/4) needs b >= (1/2) log2 n = "
        f"{0.5 * (n.bit_length() - 1):.0f}; "
        f"the bound's own crossover is b = {min_budget_for_success(n)}"
    )

    print("\n-- synchronized coin strategy (the proof's strategy family) --")
    report = run_lower_bound_experiment(
        n, budgets, SynchronizedCoinStrategy, trials=trials
    )
    rows = [
        (
            r["b"],
            r["empirical"],
            r["coin_exact"],
            r["thm1_bound"],
        )
        for r in report.rows()
    ]
    print(
        render_table(
            ["budget b", "empirical fail", "exact coin law", "Thm 1 lower bound"],
            rows,
        )
    )
    print(
        "empirical failure tracks the strategy's exact law and always sits\n"
        "above the theorem's lower bound, as it must."
    )

    print("\n-- Algorithm 1, truncated to an energy budget --")
    report = run_lower_bound_experiment(
        n, budgets, lambda b: EnergyCappedCDMIS(b), trials=trials
    )
    rows = [
        (r["b"], r["empirical"], r["thm1_bound"]) for r in report.rows()
    ]
    print(
        render_table(
            ["budget b", "empirical fail", "Thm 1 lower bound"], rows
        )
    )
    print(
        "even the energy-optimal algorithm fails on the hard instance until\n"
        "its budget clears ~log n — the lower bound is not an artifact of a\n"
        "weak strategy."
    )


if __name__ == "__main__":
    main()
