#!/usr/bin/env python
"""Frequency assignment by iterated MIS — a classic downstream use.

Interference-free scheduling in a radio network is graph coloring:
nodes sharing an edge must not use the same frequency.  The textbook
distributed route is iterated MIS — color class k is an MIS of the
still-uncolored subgraph — which needs at most ``Delta + 1``
frequencies.  Here each MIS is computed by the paper's energy-optimal
Algorithm 1, so even the *construction* of the schedule is
battery-friendly.

Run:  python examples/frequency_assignment.py
"""

from collections import Counter

from repro import CD, CDMISProtocol, ConstantsProfile
from repro.applications import (
    is_proper_coloring,
    iterated_mis_coloring,
    radio_mis_solver,
)
from repro.graphs import random_geometric_graph


def main() -> None:
    n = 200
    radius = 0.12
    graph = random_geometric_graph(n, radius, seed=23)
    constants = ConstantsProfile.practical()
    print(
        f"network: {n} transmitters, range {radius}, "
        f"{graph.num_edges} interference edges, max degree {graph.max_degree()}"
    )

    solver = radio_mis_solver(lambda: CDMISProtocol(constants=constants), CD)
    colors = iterated_mis_coloring(graph, solver, seed=23)

    assert is_proper_coloring(graph, colors)
    frequency_count = max(colors.values()) + 1
    print(
        f"\nassigned {frequency_count} frequencies "
        f"(upper bound Delta+1 = {graph.max_degree() + 1})"
    )

    histogram = Counter(colors.values())
    print("transmitters per frequency:")
    for frequency in sorted(histogram):
        bar = "#" * (histogram[frequency] // 2)
        print(f"  f{frequency:<2} {histogram[frequency]:>4}  {bar}")

    # Each frequency class is an independent set: all of its members can
    # transmit simultaneously without interference.
    largest = max(histogram.values())
    print(
        f"\nlargest simultaneous transmission group: {largest} nodes "
        f"({100.0 * largest / n:.0f}% of the network in one slot)"
    )


if __name__ == "__main__":
    main()
