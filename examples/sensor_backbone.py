#!/usr/bin/env python
"""Sensor-network backbone: the paper's motivating application.

The introduction motivates MIS as the first step of building a
communication backbone in an ad hoc sensor network: nodes are dropped
with no infrastructure, cannot even discover their neighbors without
colliding, and are battery-powered.  This example:

1. drops ``n`` sensors uniformly in the unit square (a unit-disk radio
   network),
2. runs the beeping-model MIS (Algorithm 1 runs verbatim there) to
   elect *cluster heads*,
3. builds the backbone with :func:`repro.applications.build_backbone`:
   every sensor attaches to an adjacent head, heads are bridged through
   gateway nodes, and the head-level overlay is connected,
4. reports the battery bill — worst-case awake rounds per sensor —
   versus the naive energy-oblivious election.

Run:  python examples/sensor_backbone.py
"""

from repro import BEEPING, BeepingMISProtocol, ConstantsProfile, run_protocol
from repro.analysis import validate_run
from repro.applications import build_backbone
from repro.baselines import NaiveCDLubyProtocol
from repro.graphs import random_geometric_graph


def main() -> None:
    n = 400
    radius = 0.09
    graph = random_geometric_graph(n, radius, seed=11)
    constants = ConstantsProfile.practical()
    print(
        f"deployed {n} sensors, radio range {radius}: "
        f"{graph.num_edges} links, max degree {graph.max_degree()}"
    )

    # --- elect cluster heads with the energy-optimal beeping MIS ------
    result = run_protocol(
        graph, BeepingMISProtocol(constants=constants), BEEPING, seed=5
    )
    report = validate_run(result)
    print(f"\ncluster heads: {report.describe()}")

    # --- derive the backbone ------------------------------------------
    backbone = build_backbone(graph, result.mis)
    sizes = sorted(
        (len(members) for members in backbone.clusters.values()), reverse=True
    )
    print(
        f"clusters: {len(backbone.heads)}, sizes min/med/max = "
        f"{sizes[-1]}/{sizes[len(sizes) // 2]}/{sizes[0]}"
    )
    print(f"backbone bridges (head pairs sharing gateways): {len(backbone.bridges)}")
    two_hop = sum(1 for gateway in backbone.bridges.values() if len(gateway) == 1)
    print(f"  of which 2-hop (single gateway): {two_hop}")
    print(
        "overlay connected per deployment component: "
        f"{backbone.overlay_connected_within_components()}"
    )

    # --- battery bill vs the energy-oblivious election -----------------
    naive = run_protocol(
        graph, NaiveCDLubyProtocol(constants=constants), BEEPING, seed=5
    )
    print("\nbattery bill (worst-case awake rounds per sensor):")
    print(f"  energy-optimal MIS : {result.max_energy}")
    print(f"  naive Luby         : {naive.max_energy}")
    saving = 100.0 * (1.0 - result.max_energy / max(1, naive.max_energy))
    print(f"  saving             : {saving:.0f}%")


if __name__ == "__main__":
    main()
