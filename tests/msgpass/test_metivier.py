"""Tests for the Metivier et al. [32] bit-complexity MIS program."""

import math

import pytest

from repro.constants import ConstantsProfile
from repro.graphs import (
    complete_graph,
    cycle_graph,
    empty_graph,
    gnp_random_graph,
    path_graph,
    star_graph,
)
from repro.msgpass import DistributedMetivierProtocol, run_message_passing


@pytest.fixture(scope="module")
def constants():
    return ConstantsProfile.fast()


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(5))
    def test_valid_on_random_graphs(self, constants, seed):
        graph = gnp_random_graph(48, 0.12, seed=seed)
        result = run_message_passing(
            graph, DistributedMetivierProtocol(constants=constants), seed=seed
        )
        assert result.is_valid_mis()

    def test_structures(self, constants):
        for graph in (
            empty_graph(5),
            path_graph(11),
            cycle_graph(8),
            star_graph(9),
            complete_graph(7),
        ):
            result = run_message_passing(
                graph, DistributedMetivierProtocol(constants=constants), seed=3
            )
            assert result.is_valid_mis(), graph.name

    def test_respects_round_hint(self, constants):
        graph = gnp_random_graph(32, 0.15, seed=1)
        protocol = DistributedMetivierProtocol(constants=constants)
        result = run_message_passing(graph, protocol, seed=1)
        assert result.rounds <= protocol.max_rounds_hint(32)


class TestBitComplexity:
    def test_single_bit_messages(self, constants):
        # Every competition message fits in a 1-bit + tag budget; enforce
        # a tiny CONGEST cap (tuple reprs are charged conservatively, so
        # use a generous-but-finite cap and rely on the dedicated
        # counter below for the real claim).
        graph = gnp_random_graph(24, 0.2, seed=2)
        result = run_message_passing(
            graph,
            DistributedMetivierProtocol(constants=constants),
            seed=2,
            message_bits=256,
        )
        assert result.is_valid_mis()

    def test_bits_sent_logarithmic(self, constants):
        # [32]'s headline: O(log n) bits per node per phase, and nodes
        # decide within O(1) phases in expectation — so total bits per
        # node stay O(log n)-ish.  Check the scaling between n=32 and
        # n=512 is far below linear.
        totals = {}
        for n in (32, 512):
            graph = gnp_random_graph(n, 8.0 / (n - 1), seed=4)
            result = run_message_passing(
                graph, DistributedMetivierProtocol(constants=constants), seed=4
            )
            assert result.is_valid_mis()
            totals[n] = max(info["bits_sent"] for info in result.node_info)
        assert totals[512] <= 4 * totals[32]
        assert totals[512] <= 40 * math.log2(512)

    def test_eliminated_nodes_send_no_more_bits(self, constants):
        # On a star, leaves lose to the hub quickly: their bit counters
        # must stay well below the full subround budget.
        graph = star_graph(16)
        protocol = DistributedMetivierProtocol(constants=constants)
        result = run_message_passing(graph, protocol, seed=5)
        assert result.is_valid_mis()
        subrounds_per_phase = protocol._subrounds(16)
        losers = [
            info["bits_sent"]
            for node, info in enumerate(result.node_info)
            if node not in result.mis
        ]
        # A loser is eliminated the first subround its bit is 0 while the
        # survivor's is 1 — geometric, so far below the cap on average.
        assert sum(losers) / len(losers) < subrounds_per_phase
