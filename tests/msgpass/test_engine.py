"""Tests for the message-passing (CONGEST) engine."""

import pytest

from repro.errors import MessageSizeError, ProtocolError, SimulationError
from repro.graphs import Graph, empty_graph, path_graph, star_graph
from repro.msgpass import (
    Broadcast,
    MessagePassingProtocol,
    run_message_passing,
)
from repro.radio.node import Decision


class ScriptMP(MessagePassingProtocol):
    """Broadcasts a per-node script; records inboxes in ctx.info."""

    name = "script-mp"

    def __init__(self, scripts):
        self.scripts = scripts

    def run(self, ctx):
        inboxes = []
        ctx.info["inboxes"] = inboxes
        for message in self.scripts.get(ctx.node, []):
            inbox = yield Broadcast(message)
            inboxes.append(dict(inbox))


class TestDelivery:
    def test_broadcast_reaches_all_neighbors(self):
        graph = star_graph(4)
        result = run_message_passing(graph, ScriptMP({0: ["hello"], 1: [None], 2: [None], 3: [None]}))
        for leaf in (1, 2, 3):
            assert result.node_info[leaf]["inboxes"][0] == {0: "hello"}

    def test_silence_delivers_nothing(self):
        graph = path_graph(2)
        result = run_message_passing(graph, ScriptMP({0: [None], 1: [None]}))
        assert result.node_info[0]["inboxes"][0] == {}

    def test_simultaneous_broadcasts_all_delivered(self):
        # The defining difference from radio: no collisions.
        graph = star_graph(3)
        result = run_message_passing(
            graph, ScriptMP({0: [None], 1: ["a"], 2: ["b"]})
        )
        assert result.node_info[0]["inboxes"][0] == {1: "a", 2: "b"}

    def test_non_neighbors_not_delivered(self):
        graph = Graph(3, [(0, 1)])
        result = run_message_passing(graph, ScriptMP({0: ["x"], 2: [None]}))
        assert result.node_info[2]["inboxes"][0] == {}

    def test_rounds_counted(self):
        graph = path_graph(2)
        result = run_message_passing(
            graph, ScriptMP({0: [None, None, None], 1: [None]})
        )
        assert result.rounds == 3

    def test_messages_counted(self):
        graph = path_graph(3)
        result = run_message_passing(
            graph, ScriptMP({0: ["a", "b"], 1: [None], 2: ["c"]})
        )
        assert result.messages_sent == 3

    def test_retired_nodes_stop_sending(self):
        # Node 1 retires after round 1; node 0 listens in round 2.
        graph = path_graph(2)
        result = run_message_passing(
            graph, ScriptMP({0: [None, None], 1: ["x"]})
        )
        assert result.node_info[0]["inboxes"][0] == {1: "x"}
        assert result.node_info[0]["inboxes"][1] == {}


class TestGuards:
    def test_watchdog(self):
        class Forever(MessagePassingProtocol):
            name = "forever"

            def run(self, ctx):
                while True:
                    yield Broadcast(None)

        with pytest.raises(SimulationError):
            run_message_passing(empty_graph(1), Forever(), max_rounds=10)

    def test_bad_action_rejected(self):
        class Bad(MessagePassingProtocol):
            name = "bad"

            def run(self, ctx):
                yield "hello"

        with pytest.raises(ProtocolError):
            run_message_passing(empty_graph(1), Bad())

    def test_congest_budget(self):
        graph = path_graph(2)
        with pytest.raises(MessageSizeError):
            run_message_passing(
                graph, ScriptMP({0: [1 << 64]}), message_bits=16
            )
        result = run_message_passing(graph, ScriptMP({0: [7]}), message_bits=16)
        assert result.messages_sent == 1

    def test_immediate_retirement(self):
        class Silent(MessagePassingProtocol):
            name = "silent"

            def run(self, ctx):
                ctx.decide(Decision.IN_MIS)
                return
                yield  # pragma: no cover - makes this a generator

        result = run_message_passing(empty_graph(3), Silent())
        assert result.rounds == 0
        assert result.mis == frozenset({0, 1, 2})


class TestResult:
    def test_decisions_and_validity(self):
        class PathMIS(MessagePassingProtocol):
            name = "path-mis"

            def run(self, ctx):
                ctx.decide(
                    Decision.IN_MIS if ctx.node % 2 == 0 else Decision.OUT_MIS
                )
                return
                yield  # pragma: no cover

        result = run_message_passing(path_graph(5), PathMIS())
        assert result.is_valid_mis()
        assert result.mis == frozenset({0, 2, 4})

    def test_undecided_invalidates(self):
        result = run_message_passing(empty_graph(2), ScriptMP({}))
        assert result.undecided == frozenset({0, 1})
        assert not result.is_valid_mis()

    def test_determinism(self):
        class RandomDraw(MessagePassingProtocol):
            name = "draw"

            def run(self, ctx):
                ctx.info["draw"] = ctx.rng.random()
                return
                yield  # pragma: no cover

        a = run_message_passing(empty_graph(4), RandomDraw(), seed=5)
        b = run_message_passing(empty_graph(4), RandomDraw(), seed=5)
        assert [i["draw"] for i in a.node_info] == [i["draw"] for i in b.node_info]
        assert len({i["draw"] for i in a.node_info}) == 4
