"""Tests for the distributed Luby/Ghaffari node programs, including
cross-validation against the direct baseline implementations."""

import pytest

from repro.baselines import ghaffari_mis, luby_mis
from repro.constants import ConstantsProfile
from repro.graphs import (
    complete_graph,
    cycle_graph,
    empty_graph,
    gnp_random_graph,
    path_graph,
    star_graph,
)
from repro.msgpass import (
    DistributedGhaffariProtocol,
    DistributedLubyProtocol,
    run_message_passing,
)


@pytest.fixture(scope="module")
def constants():
    return ConstantsProfile.fast()


class TestDistributedLuby:
    @pytest.mark.parametrize("seed", range(5))
    def test_valid(self, constants, seed):
        graph = gnp_random_graph(48, 0.12, seed=seed)
        result = run_message_passing(
            graph, DistributedLubyProtocol(constants=constants), seed=seed
        )
        assert result.is_valid_mis()

    def test_structures(self, constants):
        for graph in (
            empty_graph(5),
            path_graph(11),
            cycle_graph(8),
            star_graph(9),
            complete_graph(7),
        ):
            result = run_message_passing(
                graph, DistributedLubyProtocol(constants=constants), seed=4
            )
            assert result.is_valid_mis(), graph.name

    def test_fits_congest(self, constants):
        graph = gnp_random_graph(32, 0.15, seed=2)
        result = run_message_passing(
            graph,
            DistributedLubyProtocol(constants=constants),
            seed=2,
            message_bits=256,
        )
        assert result.is_valid_mis()

    def test_isolated_node_decides_in_one_phase(self, constants):
        result = run_message_passing(
            empty_graph(3), DistributedLubyProtocol(constants=constants), seed=1
        )
        assert result.rounds == 2  # one phase = two rounds
        assert result.mis == frozenset({0, 1, 2})

    def test_phase_count_comparable_to_direct_simulation(self, constants):
        # Cross-substrate check: the distributed program's phases track
        # the direct simulation's phases on the same workload.
        graph = gnp_random_graph(64, 0.1, seed=3)
        distributed_phases = []
        direct_phases = []
        for seed in range(10):
            result = run_message_passing(
                graph, DistributedLubyProtocol(constants=constants), seed=seed
            )
            distributed_phases.append(
                max(info["phases_participated"] for info in result.node_info)
            )
            direct_phases.append(luby_mis(graph, seed=seed).phases_used)
        mean_distributed = sum(distributed_phases) / len(distributed_phases)
        mean_direct = sum(direct_phases) / len(direct_phases)
        assert abs(mean_distributed - mean_direct) <= 2.0

    def test_tie_ranks_stall_but_recover(self, constants):
        # 1-bit ranks force frequent ties; the algorithm must still finish.
        graph = path_graph(6)
        result = run_message_passing(
            graph,
            DistributedLubyProtocol(constants=constants, rank_bits=1),
            seed=5,
        )
        assert result.is_valid_mis()


class TestDistributedGhaffari:
    @pytest.mark.parametrize("seed", range(5))
    def test_valid(self, seed):
        graph = gnp_random_graph(48, 0.12, seed=seed)
        result = run_message_passing(graph, DistributedGhaffariProtocol(), seed=seed)
        assert result.is_valid_mis()

    def test_structures(self):
        for graph in (
            empty_graph(4),
            path_graph(10),
            star_graph(8),
            complete_graph(6),
        ):
            result = run_message_passing(graph, DistributedGhaffariProtocol(), seed=7)
            assert result.is_valid_mis(), graph.name

    def test_iterations_comparable_to_direct_simulation(self):
        graph = gnp_random_graph(64, 0.1, seed=9)
        distributed = []
        direct = []
        for seed in range(10):
            result = run_message_passing(
                graph, DistributedGhaffariProtocol(), seed=seed
            )
            distributed.append(
                max(info["iterations_used"] for info in result.node_info)
            )
            direct.append(ghaffari_mis(graph, seed=seed).rounds_used)
        mean_distributed = sum(distributed) / len(distributed)
        mean_direct = sum(direct) / len(direct)
        # Same algorithm, same workload: iteration counts land in the
        # same ballpark (independent randomness, so allow 2x).
        assert mean_distributed <= 2.0 * mean_direct + 4
        assert mean_direct <= 2.0 * mean_distributed + 4

    def test_rounds_are_twice_iterations(self):
        graph = gnp_random_graph(24, 0.2, seed=1)
        result = run_message_passing(graph, DistributedGhaffariProtocol(), seed=1)
        worst_iterations = max(
            info["iterations_used"] for info in result.node_info
        )
        assert result.rounds == 2 * worst_iterations
