"""End-to-end pipeline integration tests.

One scenario per test: simulate -> validate -> build downstream
artifact -> check its contract — across models, topologies, and the
library's substrates, the way a user composes the pieces.
"""

import pytest

from repro import (
    BEEPING,
    CD,
    NO_CD,
    BeepingMISProtocol,
    CDMISProtocol,
    ConstantsProfile,
    NoCDEnergyMISProtocol,
    run_protocol,
)
from repro.analysis import run_result_to_dict, validate_run
from repro.analysis.workloads import build_workload
from repro.applications import (
    build_backbone,
    is_proper_coloring,
    iterated_mis_coloring,
    radio_mis_solver,
)
from repro.baselines import SenderCDBeepingMISProtocol
from repro.core import UnknownDeltaMISProtocol
from repro.msgpass import DistributedLubyProtocol, run_message_passing
from repro.radio import BEEPING_SENDER_CD, TraceRecorder


@pytest.fixture(scope="module")
def constants():
    return ConstantsProfile.fast()


class TestMISToBackbonePipeline:
    @pytest.mark.parametrize("workload", ["udg", "gnp", "grid", "tree"])
    def test_cd_mis_to_backbone(self, constants, workload):
        graph = build_workload(workload, 48, seed=3)
        result = run_protocol(
            graph, CDMISProtocol(constants=constants), CD, seed=3
        )
        report = validate_run(result, strict=True)
        backbone = build_backbone(graph, result.mis)
        assert backbone.cluster_radius_is_one()
        assert backbone.overlay_connected_within_components()
        assert len(backbone.heads) == report.mis_size

    def test_nocd_mis_to_backbone(self, constants):
        graph = build_workload("udg", 40, seed=5)
        result = run_protocol(
            graph, NoCDEnergyMISProtocol(constants=constants), NO_CD, seed=5
        )
        validate_run(result, strict=True)
        backbone = build_backbone(graph, result.mis)
        assert backbone.overlay_connected_within_components()


class TestMISToColoringPipeline:
    def test_beeping_mis_colors_a_network(self, constants):
        graph = build_workload("gnp", 32, seed=7)
        solver = radio_mis_solver(
            lambda: BeepingMISProtocol(constants=constants), BEEPING
        )
        colors = iterated_mis_coloring(graph, solver, seed=7)
        assert is_proper_coloring(graph, colors)
        assert max(colors.values()) + 1 <= graph.max_degree() + 1

    def test_sender_cd_mis_colors_a_network(self, constants):
        graph = build_workload("gnp", 32, seed=8)
        solver = radio_mis_solver(
            lambda: SenderCDBeepingMISProtocol(constants=constants),
            BEEPING_SENDER_CD,
        )
        colors = iterated_mis_coloring(graph, solver, seed=8)
        assert is_proper_coloring(graph, colors)


class TestCrossSubstrateAgreement:
    def test_radio_and_msgpass_both_solve_same_workload(self, constants):
        graph = build_workload("gnp", 48, seed=9)
        radio = run_protocol(
            graph, CDMISProtocol(constants=constants), CD, seed=9
        )
        msg = run_message_passing(
            graph, DistributedLubyProtocol(constants=constants), seed=9
        )
        assert radio.is_valid_mis() and msg.is_valid_mis()
        # Same Luby process: output sizes land close together.
        assert abs(len(radio.mis) - len(msg.mis)) <= max(3, len(msg.mis) // 2)


class TestObservabilityPipeline:
    def test_trace_export_dict_roundtrip(self, constants, tmp_path):
        graph = build_workload("gnp", 24, seed=10)
        trace = TraceRecorder()
        result = run_protocol(
            graph, CDMISProtocol(constants=constants), CD, seed=10, trace=trace
        )
        # Export both the run summary and the trace; both must be
        # consistent with the in-memory accounting.
        summary = run_result_to_dict(result)
        assert summary["max_energy"] == result.max_energy
        trace_path = tmp_path / "run.jsonl"
        trace.save_jsonl(trace_path)
        lines = trace_path.read_text().strip().splitlines()
        assert len(lines) == result.total_energy  # one event per awake round


class TestUnknownDeltaPipeline:
    def test_unknown_delta_feeds_backbone(self, constants):
        graph = build_workload("udg", 36, seed=11)
        result = run_protocol(
            graph, UnknownDeltaMISProtocol(constants=constants), NO_CD, seed=11
        )
        validate_run(result, strict=True)
        backbone = build_backbone(graph, result.mis)
        assert backbone.cluster_radius_is_one()
