"""Tests for the sender-side-CD beeping model and MIS baseline."""

import pytest

from repro.baselines import SenderCDBeepingMISProtocol
from repro.core import CDMISProtocol
from repro.errors import ConfigurationError, SimulationError
from repro.graphs import (
    complete_graph,
    empty_graph,
    gnp_random_graph,
    path_graph,
    star_graph,
)
from repro.radio import (
    BEEPING,
    BEEPING_SENDER_CD,
    CD,
    Listen,
    Protocol,
    Transmit,
    model_by_name,
    run_protocol,
)


class BeepProbe(Protocol):
    """Node 0 and 1 both beep; each records what it perceived."""

    name = "beep-probe"
    compatible_models = ("beep-sender-cd", "beep")

    def run(self, ctx):
        if ctx.node <= 1:
            observation = yield Transmit(1)
        else:
            observation = yield Listen()
        ctx.info["obs"] = None if observation is None else str(observation)


class TestSenderCDModel:
    def test_lookup(self):
        assert model_by_name("beep-sender-cd") is BEEPING_SENDER_CD
        assert model_by_name("sender-cd") is BEEPING_SENDER_CD

    def test_beeper_hears_adjacent_beeper(self):
        result = run_protocol(path_graph(2), BeepProbe(), BEEPING_SENDER_CD, seed=0)
        assert result.node_info[0]["obs"] == "beep"
        assert result.node_info[1]["obs"] == "beep"

    def test_beeper_does_not_hear_itself(self):
        # Lone beeper: no neighbors beeping -> silence, not its own beep.
        result = run_protocol(empty_graph(2), BeepProbe(), BEEPING_SENDER_CD, seed=0)
        assert result.node_info[0]["obs"] == "silence"

    def test_non_adjacent_beepers_unheard(self):
        from repro.graphs import Graph

        graph = Graph(3, [(0, 2)])  # 0 and 1 beep, but are not adjacent
        result = run_protocol(graph, BeepProbe(), BEEPING_SENDER_CD, seed=0)
        assert result.node_info[0]["obs"] == "silence"
        assert result.node_info[1]["obs"] == "silence"
        assert result.node_info[2]["obs"] == "beep"

    def test_plain_beeping_gives_senders_nothing(self):
        result = run_protocol(path_graph(2), BeepProbe(), BEEPING, seed=0)
        assert result.node_info[0]["obs"] is None


class TestSenderCDBeepingMIS:
    @pytest.mark.parametrize("seed", range(5))
    def test_valid(self, fast_constants, seed):
        graph = gnp_random_graph(48, 0.12, seed=seed)
        result = run_protocol(
            graph,
            SenderCDBeepingMISProtocol(constants=fast_constants),
            BEEPING_SENDER_CD,
            seed=seed,
        )
        assert result.is_valid_mis()

    def test_structures(self, fast_constants):
        for graph in (
            empty_graph(4),
            path_graph(11),
            star_graph(9),
            complete_graph(10),
        ):
            result = run_protocol(
                graph,
                SenderCDBeepingMISProtocol(constants=fast_constants),
                BEEPING_SENDER_CD,
                seed=4,
            )
            assert result.is_valid_mis(), graph.name

    def test_independence_is_deterministic(self, fast_constants):
        # Exact lone-beeper detection: adjacent joins are impossible,
        # so even *invalid* runs can only fail by leaving undecided.
        graph = complete_graph(12)
        for seed in range(30):
            result = run_protocol(
                graph,
                SenderCDBeepingMISProtocol(constants=fast_constants),
                BEEPING_SENDER_CD,
                seed=seed,
            )
            assert graph.is_independent_set(result.mis)

    def test_rounds_much_lower_than_algorithm1(self, fast_constants):
        graph = gnp_random_graph(256, 8.0 / 255.0, seed=7)
        beep = run_protocol(
            graph,
            SenderCDBeepingMISProtocol(constants=fast_constants),
            BEEPING_SENDER_CD,
            seed=7,
        )
        radio = run_protocol(
            graph, CDMISProtocol(constants=fast_constants), CD, seed=7
        )
        assert beep.is_valid_mis() and radio.is_valid_mis()
        assert beep.rounds * 2 < radio.rounds

    def test_refuses_weaker_models(self, fast_constants):
        with pytest.raises(SimulationError):
            run_protocol(
                path_graph(4),
                SenderCDBeepingMISProtocol(constants=fast_constants),
                CD,
                seed=0,
            )

    def test_rejects_bad_factor(self):
        with pytest.raises(ConfigurationError):
            SenderCDBeepingMISProtocol(iterations_factor=0)

    def test_round_hint_respected(self, fast_constants):
        graph = gnp_random_graph(32, 0.2, seed=2)
        protocol = SenderCDBeepingMISProtocol(constants=fast_constants)
        result = run_protocol(graph, protocol, BEEPING_SENDER_CD, seed=2)
        assert result.rounds <= protocol.max_rounds_hint(32, graph.max_degree())
