"""Tests for the radio baselines (naive CD Luby, naive no-CD backoff)."""

import pytest

from repro.baselines import NaiveBackoffMISProtocol, NaiveCDLubyProtocol
from repro.core import CDMISProtocol
from repro.graphs import (
    complete_graph,
    empty_graph,
    gnp_random_graph,
    path_graph,
    star_graph,
)
from repro.radio import BEEPING, CD, NO_CD, run_protocol


class TestNaiveCDLuby:
    @pytest.mark.parametrize("seed", range(4))
    def test_valid(self, fast_constants, seed):
        graph = gnp_random_graph(32, 0.15, seed=seed)
        result = run_protocol(
            graph, NaiveCDLubyProtocol(constants=fast_constants), CD, seed=seed
        )
        assert result.is_valid_mis()

    def test_valid_on_structures(self, fast_constants):
        for graph in (empty_graph(4), path_graph(9), star_graph(8), complete_graph(6)):
            result = run_protocol(
                graph, NaiveCDLubyProtocol(constants=fast_constants), CD, seed=2
            )
            assert result.is_valid_mis(), graph.name

    def test_works_in_beeping_model(self, fast_constants):
        result = run_protocol(
            path_graph(8), NaiveCDLubyProtocol(constants=fast_constants), BEEPING, seed=1
        )
        assert result.is_valid_mis()

    def test_same_output_law_as_algorithm1(self, fast_constants):
        # Same seed => identical rank draws => identical MIS, because
        # extra listening has no algorithmic effect.
        graph = gnp_random_graph(24, 0.2, seed=5)
        optimal = run_protocol(
            graph, CDMISProtocol(constants=fast_constants), CD, seed=9
        )
        naive = run_protocol(
            graph, NaiveCDLubyProtocol(constants=fast_constants), CD, seed=9
        )
        assert optimal.mis == naive.mis
        assert optimal.rounds == naive.rounds

    def test_energy_strictly_higher_than_algorithm1(self, fast_constants):
        graph = gnp_random_graph(48, 0.12, seed=6)
        optimal = run_protocol(
            graph, CDMISProtocol(constants=fast_constants), CD, seed=7
        )
        naive = run_protocol(
            graph, NaiveCDLubyProtocol(constants=fast_constants), CD, seed=7
        )
        assert naive.max_energy > optimal.max_energy
        assert naive.total_energy > optimal.total_energy

    def test_energy_equals_attendance(self, fast_constants):
        # A naive node is awake for every round of every phase it
        # attends: its awake count equals its finish round.
        graph = complete_graph(8)
        result = run_protocol(
            graph, NaiveCDLubyProtocol(constants=fast_constants), CD, seed=3
        )
        for stats in result.node_stats:
            assert stats.awake_rounds == stats.finish_round


class TestNaiveBackoffMIS:
    @pytest.mark.parametrize("seed", range(3))
    def test_valid(self, fast_constants, seed):
        graph = gnp_random_graph(24, 0.15, seed=seed)
        result = run_protocol(
            graph, NaiveBackoffMISProtocol(constants=fast_constants), NO_CD, seed=seed
        )
        assert result.is_valid_mis()

    def test_valid_on_structures(self, fast_constants):
        for graph in (empty_graph(4), path_graph(8), star_graph(6)):
            result = run_protocol(
                graph, NaiveBackoffMISProtocol(constants=fast_constants), NO_CD, seed=4
            )
            assert result.is_valid_mis(), graph.name

    def test_round_hint_respected(self, fast_constants):
        graph = gnp_random_graph(24, 0.15, seed=2)
        protocol = NaiveBackoffMISProtocol(constants=fast_constants)
        result = run_protocol(graph, protocol, NO_CD, seed=2)
        assert result.rounds <= protocol.max_rounds_hint(24, graph.max_degree())

    def test_energy_equals_attendance(self, fast_constants):
        graph = path_graph(6)
        result = run_protocol(
            graph, NaiveBackoffMISProtocol(constants=fast_constants), NO_CD, seed=1
        )
        for stats in result.node_stats:
            assert stats.awake_rounds == stats.finish_round

    def test_costs_more_energy_than_algorithm2(self, fast_constants):
        from repro.core import NoCDEnergyMISProtocol

        graph = gnp_random_graph(32, 0.15, seed=8)
        efficient = run_protocol(
            graph, NoCDEnergyMISProtocol(constants=fast_constants), NO_CD, seed=8
        )
        naive = run_protocol(
            graph, NaiveBackoffMISProtocol(constants=fast_constants), NO_CD, seed=8
        )
        assert naive.max_energy > efficient.max_energy

    def test_delta_override(self, fast_constants):
        protocol = NaiveBackoffMISProtocol(constants=fast_constants, delta=2)
        result = run_protocol(path_graph(8), protocol, NO_CD, seed=3)
        assert result.is_valid_mis()
