"""Tests for the idealized message-passing baselines (Luby, Ghaffari)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import ghaffari_mis, greedy_mis, luby_mis
from repro.errors import SimulationError
from repro.graphs import (
    complete_graph,
    cycle_graph,
    empty_graph,
    gnp_random_graph,
    is_valid_mis,
    path_graph,
    star_graph,
)


class TestLuby:
    @pytest.mark.parametrize("seed", range(5))
    def test_valid(self, seed):
        graph = gnp_random_graph(60, 0.1, seed=seed)
        result = luby_mis(graph, seed=seed)
        assert is_valid_mis(graph, result.mis)
        assert result.converged

    def test_empty_graph_one_phase(self):
        result = luby_mis(empty_graph(5), seed=0)
        assert result.mis == set(range(5))
        assert result.phases_used == 1

    def test_zero_node_graph(self):
        from repro.graphs import Graph

        result = luby_mis(Graph(0), seed=0)
        assert result.mis == set()
        assert result.phases_used == 0

    def test_residual_series_shape(self):
        graph = gnp_random_graph(60, 0.1, seed=3)
        result = luby_mis(graph, seed=3)
        assert result.residual_edges[0] == graph.num_edges
        assert result.residual_edges[-1] == 0
        assert result.residual_nodes[-1] == 0
        assert len(result.residual_edges) == result.phases_used + 1

    def test_residual_edges_monotone(self):
        graph = gnp_random_graph(60, 0.15, seed=4)
        result = luby_mis(graph, seed=4)
        for before, after in zip(result.residual_edges, result.residual_edges[1:]):
            assert after <= before

    def test_expected_halving_statistically(self):
        # Lemma 5's reference process: first-phase shrinkage averaged
        # over seeds must be at most ~1/2 (generous margin 0.6).
        graph = gnp_random_graph(80, 0.1, seed=5)
        ratios = []
        for seed in range(30):
            result = luby_mis(graph, seed=seed)
            if result.residual_edges[0]:
                ratios.append(result.residual_edges[1] / result.residual_edges[0])
        assert sum(ratios) / len(ratios) <= 0.6

    def test_discrete_ranks_variant(self):
        graph = gnp_random_graph(40, 0.15, seed=6)
        result = luby_mis(graph, seed=6, rank_bits=24)
        assert is_valid_mis(graph, result.mis)

    def test_phase_budget_enforced(self):
        graph = complete_graph(30)
        with pytest.raises(SimulationError):
            luby_mis(graph, seed=0, max_phases=0)

    def test_phases_logarithmic(self):
        graph = gnp_random_graph(200, 0.05, seed=7)
        result = luby_mis(graph, seed=7)
        assert result.phases_used <= 20

    @given(st.integers(1, 30), st.integers(0, 5))
    @settings(max_examples=25, deadline=None)
    def test_property_valid_on_random_graphs(self, n, seed):
        graph = gnp_random_graph(n, 0.2, seed=seed)
        result = luby_mis(graph, seed=seed)
        assert is_valid_mis(graph, result.mis)


class TestGhaffari:
    @pytest.mark.parametrize("seed", range(5))
    def test_valid(self, seed):
        graph = gnp_random_graph(60, 0.1, seed=seed)
        result = ghaffari_mis(graph, seed=seed)
        assert is_valid_mis(graph, result.mis)
        assert result.converged

    def test_structures(self):
        for graph in (path_graph(15), cycle_graph(10), star_graph(12), complete_graph(9)):
            result = ghaffari_mis(graph, seed=2)
            assert is_valid_mis(graph, result.mis), graph.name

    def test_decided_rounds_recorded(self):
        graph = gnp_random_graph(30, 0.2, seed=3)
        result = ghaffari_mis(graph, seed=3)
        assert set(result.decided_round) == set(graph.nodes)
        assert all(1 <= r <= result.rounds_used for r in result.decided_round.values())

    def test_round_budget_enforced(self):
        with pytest.raises(SimulationError):
            ghaffari_mis(complete_graph(20), seed=0, max_rounds=0)

    def test_rounds_logarithmic(self):
        graph = gnp_random_graph(200, 0.05, seed=4)
        result = ghaffari_mis(graph, seed=4)
        assert result.rounds_used <= 60

    def test_residual_series(self):
        graph = gnp_random_graph(50, 0.1, seed=5)
        result = ghaffari_mis(graph, seed=5)
        assert result.residual_nodes[0] == 50
        assert result.residual_nodes[-1] == 0


class TestAgreementAcrossAlgorithms:
    def test_mis_sizes_comparable(self):
        # Different MIS algorithms give different sets, but sizes live
        # within a small band on the same graph.
        graph = gnp_random_graph(80, 0.1, seed=9)
        sizes = {
            "greedy": len(greedy_mis(graph, rng=random.Random(1))),
            "luby": len(luby_mis(graph, seed=1).mis),
            "ghaffari": len(ghaffari_mis(graph, seed=1).mis),
        }
        low, high = min(sizes.values()), max(sizes.values())
        assert high <= 1.6 * low
