"""Tests for backbone construction from an MIS."""

import pytest

from repro.applications import build_backbone
from repro.core import CDMISProtocol
from repro.errors import ValidationError
from repro.graphs import (
    complete_graph,
    cycle_graph,
    empty_graph,
    gnp_random_graph,
    grid_graph,
    greedy_mis,
    path_graph,
    random_geometric_graph,
    star_graph,
)
from repro.radio import CD, run_protocol


class TestConstruction:
    def test_path_clusters(self):
        graph = path_graph(5)
        backbone = build_backbone(graph, {0, 2, 4})
        assert backbone.heads == frozenset({0, 2, 4})
        assert backbone.membership[1] == 0  # smallest adjacent head
        assert backbone.membership[3] == 2
        clusters = backbone.clusters
        assert clusters[0] == [0, 1]
        assert clusters[4] == [4]

    def test_cluster_radius(self):
        graph = gnp_random_graph(40, 0.15, seed=2)
        backbone = build_backbone(graph, greedy_mis(graph))
        assert backbone.cluster_radius_is_one()

    def test_invalid_mis_rejected(self):
        graph = path_graph(4)
        with pytest.raises(ValidationError):
            build_backbone(graph, {0, 1})  # adjacent heads
        with pytest.raises(ValidationError):
            build_backbone(graph, {0})  # not dominating

    def test_non_strict_tolerates_orphans(self):
        graph = path_graph(4)
        backbone = build_backbone(graph, {0}, strict=False)
        assert 3 not in backbone.membership

    def test_isolated_heads(self):
        graph = empty_graph(3)
        backbone = build_backbone(graph, {0, 1, 2})
        assert backbone.clusters == {0: [0], 1: [1], 2: [2]}
        assert backbone.bridges == {}


class TestBridges:
    def test_two_hop_bridge_preferred(self):
        graph = path_graph(3)  # heads 0 and 2, gateway 1
        backbone = build_backbone(graph, {0, 2})
        assert backbone.bridges == {(0, 2): (1,)}

    def test_three_hop_bridge(self):
        graph = path_graph(4)  # heads 0 and 3 at distance 3
        backbone = build_backbone(graph, {0, 3})
        assert backbone.bridges == {(0, 3): (1, 2)}

    def test_gateway_order_matches_head_order(self):
        graph = path_graph(4)
        backbone = build_backbone(graph, {0, 3})
        x, y = backbone.bridges[(0, 3)]
        assert graph.has_edge(0, x) and graph.has_edge(y, 3)

    def test_overlay_connected_on_connected_graphs(self):
        for graph in (
            path_graph(11),
            cycle_graph(9),
            grid_graph(4, 5),
            gnp_random_graph(50, 0.12, seed=3),
        ):
            if len(graph.connected_components()) != 1:
                continue
            backbone = build_backbone(graph, greedy_mis(graph))
            assert backbone.overlay_connected_within_components(), graph.name

    def test_overlay_per_component(self):
        from repro.graphs import Graph

        graph = Graph(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
        backbone = build_backbone(graph, greedy_mis(graph))
        assert backbone.overlay_connected_within_components()

    def test_single_cluster_overlay(self):
        backbone = build_backbone(star_graph(6), {0})
        overlay = backbone.overlay_graph()
        assert overlay.num_nodes == 1
        assert overlay.num_edges == 0


class TestWithDistributedMIS:
    def test_backbone_from_radio_mis(self, fast_constants):
        graph = random_geometric_graph(80, 0.2, seed=7)
        result = run_protocol(
            graph, CDMISProtocol(constants=fast_constants), CD, seed=7
        )
        assert result.is_valid_mis()
        backbone = build_backbone(graph, result.mis)
        assert backbone.cluster_radius_is_one()
        assert backbone.overlay_connected_within_components()

    def test_clique_single_head(self, fast_constants):
        graph = complete_graph(9)
        result = run_protocol(
            graph, CDMISProtocol(constants=fast_constants), CD, seed=1
        )
        backbone = build_backbone(graph, result.mis)
        assert len(backbone.heads) == 1
        assert len(backbone.clusters[next(iter(backbone.heads))]) == 9
