"""Tests for iterated-MIS coloring."""

import random

import pytest

from repro.applications import (
    is_proper_coloring,
    iterated_mis_coloring,
    radio_mis_solver,
)
from repro.core import CDMISProtocol
from repro.errors import SimulationError, ValidationError
from repro.graphs import (
    complete_graph,
    cycle_graph,
    empty_graph,
    gnp_random_graph,
    greedy_mis,
    path_graph,
)
from repro.radio import CD


def greedy_solver(graph, seed):
    return greedy_mis(graph, rng=random.Random(seed))


class TestProperColoringPredicate:
    def test_accepts_proper(self):
        graph = path_graph(4)
        assert is_proper_coloring(graph, {0: 0, 1: 1, 2: 0, 3: 1})

    def test_rejects_monochromatic_edge(self):
        graph = path_graph(3)
        assert not is_proper_coloring(graph, {0: 0, 1: 0, 2: 1})

    def test_rejects_partial(self):
        graph = path_graph(3)
        assert not is_proper_coloring(graph, {0: 0, 1: 1})


class TestIteratedColoring:
    @pytest.mark.parametrize("seed", range(3))
    def test_proper_on_random_graphs(self, seed):
        graph = gnp_random_graph(40, 0.15, seed=seed)
        colors = iterated_mis_coloring(graph, greedy_solver, seed=seed)
        assert is_proper_coloring(graph, colors)

    def test_color_count_within_delta_plus_one(self):
        graph = gnp_random_graph(40, 0.2, seed=4)
        colors = iterated_mis_coloring(graph, greedy_solver, seed=4)
        assert max(colors.values()) + 1 <= graph.max_degree() + 1

    def test_empty_graph_single_color(self):
        colors = iterated_mis_coloring(empty_graph(5), greedy_solver)
        assert set(colors.values()) == {0}

    def test_clique_uses_n_colors(self):
        graph = complete_graph(6)
        colors = iterated_mis_coloring(graph, greedy_solver)
        assert sorted(colors.values()) == list(range(6))

    def test_cycle_uses_at_most_three(self):
        colors = iterated_mis_coloring(cycle_graph(9), greedy_solver)
        assert max(colors.values()) + 1 <= 3

    def test_zero_node_graph(self):
        from repro.graphs import Graph

        assert iterated_mis_coloring(Graph(0), greedy_solver) == {}

    def test_broken_solver_detected(self):
        def dependent_solver(graph, seed):
            return set(graph.nodes)  # not independent on any edge

        with pytest.raises(ValidationError):
            iterated_mis_coloring(path_graph(3), dependent_solver)

    def test_empty_solver_detected(self):
        def empty_solver(graph, seed):
            return set()

        with pytest.raises(ValidationError):
            iterated_mis_coloring(path_graph(3), empty_solver)

    def test_non_maximal_solver_hits_watchdog(self):
        def lazy_solver(graph, seed):
            # Always a single node: independent but far from maximal.
            return {0}

        with pytest.raises(SimulationError):
            iterated_mis_coloring(
                empty_graph(50), lazy_solver, max_colors=10
            )


class TestRadioColoring:
    def test_coloring_with_algorithm1(self, fast_constants):
        graph = gnp_random_graph(32, 0.15, seed=6)
        solver = radio_mis_solver(
            lambda: CDMISProtocol(constants=fast_constants), CD
        )
        colors = iterated_mis_coloring(graph, solver, seed=6)
        assert is_proper_coloring(graph, colors)
        assert max(colors.values()) + 1 <= graph.max_degree() + 1
