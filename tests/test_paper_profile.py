"""End-to-end runs with the paper-faithful constants (Section 5.2).

These are the only tests using ``ConstantsProfile.paper()``; they prove
the faithful profile executes and is correct.  The no-CD run simulates
tens of millions of rounds — feasible only because the engine's cost
tracks awake rounds.
"""

import pytest

from repro.constants import ConstantsProfile
from repro.core import CDMISProtocol, NoCDEnergyMISProtocol
from repro.graphs import gnp_random_graph
from repro.radio import CD, NO_CD, run_protocol


@pytest.fixture(scope="module")
def paper():
    return ConstantsProfile.paper()


def test_paper_profile_values_match_section_5_2(paper):
    assert paper.beta == 4.0
    assert paper.kappa == 5.0
    assert round(paper.luby_c) == 176  # 4 / log2(64/63)
    assert round(paper.backoff_c) == 26  # 5 / log2(8/7)


def test_cd_mis_with_paper_constants(paper):
    graph = gnp_random_graph(64, 0.15, seed=1)
    result = run_protocol(graph, CDMISProtocol(constants=paper), CD, seed=1)
    assert result.is_valid_mis()
    # Energy stays tiny even though the phase budget is enormous —
    # C log n phases exist but the run decides within the first few.
    assert result.max_energy < 200


def test_nocd_mis_with_paper_constants(paper):
    graph = gnp_random_graph(16, 0.3, seed=1)
    protocol = NoCDEnergyMISProtocol(constants=paper)
    result = run_protocol(graph, protocol, NO_CD, seed=1)
    assert result.is_valid_mis()
    assert result.rounds > 1_000_000  # tens of millions of simulated rounds
    assert result.max_energy * 10 < result.rounds
