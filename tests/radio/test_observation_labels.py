"""``observation_label``: cached labels must be model-keyed.

Regression guard: an earlier cache was keyed by ``ObservationKind``
alone, so a model interning an observation with a custom ``__str__``
(same kind, different rendering) was served another model's label.  The
cache is now keyed by the model's name and the interned objects' ids.
"""

from dataclasses import dataclass

from repro.radio.models import BEEPING, CD, NO_CD
from repro.radio.observations import (
    BEEP,
    COLLISION,
    SILENCE,
    Observation,
    ObservationKind,
    message,
    observation_label,
)


@dataclass(frozen=True)
class LoudObservation(Observation):
    def __str__(self):
        return f"LOUD-{self.kind.value}"


class LoudModel:
    """Fake collision model interning custom-printing observations."""

    name = "loud-test-model"
    observation_zero = LoudObservation(ObservationKind.SILENCE)
    observation_one = LoudObservation(ObservationKind.BEEP)
    observation_many = LoudObservation(ObservationKind.COLLISION)


def test_keyless_labels_match_str():
    for observation in (SILENCE, COLLISION, BEEP):
        assert observation_label(observation) == str(observation)


def test_message_payload_always_formatted():
    observation = message(42)
    assert observation_label(observation) == "message(42)"
    assert observation_label(observation, CD) == "message(42)"


def test_model_keyed_labels_match_str():
    for model in (CD, NO_CD, BEEPING):
        for interned in (
            model.observation_zero,
            model.observation_one,
            model.observation_many,
        ):
            if interned is not None:
                assert observation_label(interned, model) == str(interned)


def test_custom_str_model_does_not_alias_shared_cache():
    model = LoudModel()
    # The custom rendering must come back, not the kind's shared label…
    assert observation_label(model.observation_zero, model) == "LOUD-silence"
    assert observation_label(model.observation_many, model) == "LOUD-collision"
    # …and the standard singletons keep theirs afterwards.
    assert observation_label(SILENCE, CD) == "silence"
    assert observation_label(SILENCE) == "silence"


def test_uncached_observation_falls_back_to_str():
    # An observation the model did not intern (fresh object) still
    # renders correctly through the model-keyed path.
    fresh = Observation(ObservationKind.SILENCE)
    assert observation_label(fresh, CD) == "silence"
    loud_fresh = LoudObservation(ObservationKind.BEEP)
    assert observation_label(loud_fresh, CD) == "LOUD-beep"
