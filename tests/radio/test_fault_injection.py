"""Tests for crash-stop fault injection in the radio engine."""

import pytest

from repro.core import CDMISProtocol
from repro.errors import ConfigurationError
from repro.graphs import empty_graph, gnp_random_graph, path_graph, star_graph
from repro.radio import CD, Decision, Listen, Sleep, Transmit, run_protocol
from repro.radio._engine_reference import run_protocol_reference
from tests.radio.test_engine import ScriptProtocol


class TestCrashSemantics:
    def test_crashed_node_stops_acting(self):
        protocol = ScriptProtocol({0: [Listen(), Listen(), Listen(), Listen()]})
        result = run_protocol(
            empty_graph(1), protocol, CD, seed=0, crash_schedule={0: 2}
        )
        stats = result.node_stats[0]
        assert stats.crashed
        assert stats.listen_rounds == 2  # rounds 0 and 1 only
        assert stats.finish_round == 2

    def test_crashed_transmitter_goes_silent(self):
        # Node 1 would transmit at rounds 0 and 1, but crashes at 1.
        protocol = ScriptProtocol(
            {0: [Listen(), Listen()], 1: [Transmit(), Transmit()]}
        )
        result = run_protocol(
            path_graph(2), protocol, CD, seed=0, crash_schedule={1: 1}
        )
        assert result.node_info[0]["seen"] == ["message(1)", "silence"]

    def test_crash_during_sleep(self):
        protocol = ScriptProtocol({0: [Sleep(5), Listen()]})
        result = run_protocol(
            empty_graph(1), protocol, CD, seed=0, crash_schedule={0: 3}
        )
        stats = result.node_stats[0]
        assert stats.crashed
        assert stats.listen_rounds == 0
        assert stats.finish_round == 3

    def test_crash_at_round_zero(self):
        protocol = ScriptProtocol({0: [Transmit()], 1: [Listen()]})
        result = run_protocol(
            path_graph(2), protocol, CD, seed=0, crash_schedule={0: 0}
        )
        assert result.node_stats[0].awake_rounds == 0
        assert result.node_info[1]["seen"] == ["silence"]

    def test_decision_freezes_at_crash(self):
        class DecideLate(ScriptProtocol):
            def run(self, ctx):
                yield Listen()
                yield Listen()
                ctx.decide(Decision.IN_MIS)

        result = run_protocol(
            empty_graph(1), DecideLate({}), CD, seed=0, crash_schedule={0: 1}
        )
        assert result.node_stats[0].decision is Decision.UNDECIDED

    def test_no_crash_schedule_flags_nothing(self):
        protocol = ScriptProtocol({0: [Listen()]})
        result = run_protocol(empty_graph(1), protocol, CD, seed=0)
        assert not result.node_stats[0].crashed
        assert result.crashed_nodes == frozenset()

    def test_crash_after_finish_is_noop(self):
        protocol = ScriptProtocol({0: [Listen()]})
        result = run_protocol(
            empty_graph(1), protocol, CD, seed=0, crash_schedule={0: 100}
        )
        assert not result.node_stats[0].crashed


class TestCrashScheduleValidation:
    """Malformed crash schedules fail fast in *both* engines.

    Regression: crash rounds were previously unvalidated — a float
    round silently never (or always) crashed depending on comparison
    luck, and a negative round crashed before round zero.
    """

    ENGINES = [run_protocol, run_protocol_reference]

    @pytest.mark.parametrize("engine", ENGINES, ids=["optimized", "reference"])
    @pytest.mark.parametrize("bad_round", [2.5, "3", None, True])
    def test_non_int_crash_round_raises_naming_node(self, engine, bad_round):
        protocol = ScriptProtocol({0: [Listen()]})
        with pytest.raises(ConfigurationError, match="node 0 must be an int"):
            engine(
                empty_graph(1), protocol, CD, seed=0,
                crash_schedule={0: bad_round},
            )

    @pytest.mark.parametrize("engine", ENGINES, ids=["optimized", "reference"])
    def test_negative_crash_round_raises_naming_node(self, engine):
        protocol = ScriptProtocol({0: [Listen()], 5: [Listen()]})
        with pytest.raises(
            ConfigurationError, match="node 5 must be non-negative"
        ):
            engine(
                empty_graph(6), protocol, CD, seed=0,
                crash_schedule={5: -1},
            )

    @pytest.mark.parametrize("engine", ENGINES, ids=["optimized", "reference"])
    def test_valid_schedule_untouched(self, engine):
        protocol = ScriptProtocol({0: [Listen(), Listen()]})
        result = engine(
            empty_graph(1), protocol, CD, seed=0, crash_schedule={0: 1}
        )
        assert result.node_stats[0].crashed


class TestSurvivorMetrics:
    def test_surviving_views(self):
        graph = star_graph(6)
        # Crash the hub early so the leaves never hear a winner's claim
        # from it; survivors are the leaves.
        protocol = CDMISProtocol()
        result = run_protocol(
            graph, protocol, CD, seed=3, crash_schedule={0: 0}
        )
        assert result.crashed_nodes == frozenset({0})
        assert result.surviving_mis_independent()
        # Leaves are mutually non-adjacent: each must join on its own.
        assert result.surviving_coverage() == 1.0
        assert result.mis - {0} == frozenset(range(1, 6))

    def test_coverage_degrades_gracefully(self):
        # Crash a random tenth of nodes mid-run; survivors' coverage
        # stays high because most of the MIS is decided by then.
        graph = gnp_random_graph(50, 0.12, seed=4)
        protocol = CDMISProtocol()
        crash_schedule = {node: 20 for node in range(0, 50, 10)}
        coverages = []
        for seed in range(10):
            result = run_protocol(
                graph, protocol, CD, seed=seed, crash_schedule=crash_schedule
            )
            assert result.surviving_mis_independent()
            coverages.append(result.surviving_coverage())
        assert sum(coverages) / len(coverages) >= 0.9

    def test_all_crashed_coverage_is_one(self):
        protocol = ScriptProtocol({0: [Listen()], 1: [Listen()]})
        result = run_protocol(
            empty_graph(2), protocol, CD, seed=0, crash_schedule={0: 0, 1: 0}
        )
        assert result.surviving_coverage() == 1.0
