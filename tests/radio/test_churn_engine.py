"""Golden churn cases: hand-picked topology events with known repair
behaviour, checked bit-identically on both engines.

Complements the randomized suite (:mod:`tests.faults.test_churn_fuzz`)
with cases whose repair dynamics are fully predictable: an edge insert
between two decided ``IN_MIS`` nodes, an edge delete that undominates
an ``OUT_MIS`` node, a join wave landing mid-run, the departure of a
decided MIS node, and the 512-node acceptance run from the issue.
"""

import pytest

from repro.constants import ConstantsProfile
from repro.core import CDMISProtocol
from repro.faults import ChurnPlan, FaultPlan
from repro.graphs import Graph, gnp_random_graph
from repro.radio import CD, run_protocol
from repro.radio._engine_reference import run_protocol_reference

FAST = ConstantsProfile.fast()


def run_both(graph, plan, seed, constants=FAST):
    protocol = CDMISProtocol(constants=constants)
    optimized = run_protocol(graph, protocol, CD, seed=seed, faults=plan)
    reference = run_protocol_reference(
        graph, protocol, CD, seed=seed, faults=plan
    )
    assert optimized == reference
    if optimized.final_graph is not None:
        assert set(optimized.final_graph.edges) == set(
            reference.final_graph.edges
        )
    return optimized


class TestNoopPlan:
    def test_noop_churn_plan_matches_static_run(self):
        graph = gnp_random_graph(24, 0.2, seed=3)
        protocol = CDMISProtocol(constants=FAST)
        static = run_protocol(graph, protocol, CD, seed=3)
        churned = run_protocol(
            graph, protocol, CD, seed=3, faults=FaultPlan(churn=ChurnPlan())
        )
        assert churned == static
        assert churned.final_graph is None
        assert churned.churn_events == ()


class TestEdgeToggleRepair:
    def test_insert_between_two_in_mis_nodes_repairs(self):
        # Two isolated nodes both join the MIS immediately; a guaranteed
        # toggle (p=1, one live pair) then inserts the edge between
        # them, breaking independence — exactly one must restart out.
        graph = Graph(2, [], name="two-isolated")
        plan = FaultPlan(seed=5, churn=ChurnPlan(edge_p=1.0, start=30, stop=31))
        result = run_both(graph, plan, seed=5)
        assert result.churn_events == (("toggle", 1),)
        assert set(result.final_graph.edges) == {(0, 1)}
        assert result.is_valid_mis()
        assert len(result.mis) == 1  # K2 has a singleton MIS
        assert result.mis_violation_window > 0
        assert result.repair_rounds > 0
        assert result.repair_energy > 0
        # The one event needed a repair window with a positive settle.
        ((event_round, settle),) = result.time_to_restabilize
        assert event_round == 30 and settle is not None and settle > 0
        # Repair restarts register like crash recoveries, so the
        # generic stabilization metric sees them too (it counts from
        # the restart round, the window from the event round).
        assert 0 < result.time_to_stabilize() <= settle

    def test_delete_undominating_edge_repairs(self):
        # K2 decides one node in, one out; deleting its only edge
        # leaves the OUT node undominated, so it must restart into the
        # MIS — the final (empty) graph has both nodes in.
        graph = Graph(2, [(0, 1)], name="pair")
        plan = FaultPlan(seed=0, churn=ChurnPlan(edge_p=1.0, start=40, stop=41))
        result = run_both(graph, plan, seed=0)
        assert result.churn_events == (("toggle", 1),)
        assert result.final_graph.edges == ()
        assert result.is_valid_mis()
        assert result.mis == frozenset({0, 1})
        restarted = [stats for stats in result.node_stats if stats.restarts]
        assert len(restarted) == 1


class TestJoinMidRun:
    def test_joiners_decide_and_final_mis_covers_them(self):
        graph = gnp_random_graph(16, 0.25, seed=7)
        plan = FaultPlan(seed=7, churn=ChurnPlan(joins=((12, 3),)))
        result = run_both(graph, plan, seed=7)
        assert ("join", 3) in result.churn_events
        assert result.final_graph.num_nodes == 19
        assert result.is_valid_mis()
        joiners = [
            stats for stats in result.node_stats if stats.node >= 16
        ]
        assert len(joiners) == 3
        for stats in joiners:
            assert stats.decision.name in ("IN_MIS", "OUT_MIS")
            assert stats.finish_round >= 12  # woke at the join round
        # A join breaks nothing by itself: if no other repair window
        # covered it, its restabilization entry is an immediate 0.
        entries = dict(result.time_to_restabilize)
        assert entries.get(12, 0) is not None


class TestLeaveOfDecidedMISNode:
    def test_departure_undominates_and_repair_restabilizes(self):
        # Find a MIS node that uniquely dominates some neighbor in the
        # static run; its departure must open a violation window and
        # repair must re-cover the orphaned neighbor.
        graph = gnp_random_graph(20, 0.15, seed=9)
        protocol = CDMISProtocol(constants=FAST)
        static = run_protocol(graph, protocol, CD, seed=9)
        assert static.is_valid_mis()
        target = None
        for candidate in sorted(static.mis):
            for neighbor in graph.neighbor_set(candidate):
                if neighbor in static.mis:
                    continue
                if graph.neighbor_set(neighbor) & static.mis == {candidate}:
                    target = candidate
                    break
            if target is not None:
                break
        assert target is not None, "seed must yield a unique dominator"
        finish = max(stats.finish_round for stats in static.node_stats)

        plan = FaultPlan(
            seed=9, churn=ChurnPlan(leaves=((target, finish + 4),))
        )
        result = run_both(graph, plan, seed=9)
        assert result.churn_events == (("leave", 1),)
        assert result.left_nodes == frozenset({target})
        assert target not in result.mis
        assert result.is_valid_mis()
        assert result.mis_violation_window > 0
        # The leaver's stats are labelled left, not crashed.
        (stats,) = [s for s in result.node_stats if s.node == target]
        assert stats.left and not stats.crashed
        # Its edges are gone from the final topology.
        assert all(target not in edge for edge in result.final_graph.edges)

    def test_leave_distinct_from_crash(self):
        # A crash keeps the topology: the dead node's neighbors stay
        # dominated on paper. A leave rewires: same node, same round,
        # different final graph.
        graph = Graph(3, [(0, 1), (1, 2)], name="path")
        leave = run_both(
            graph, FaultPlan(seed=4, churn=ChurnPlan(leaves=((1, 50),)))
        , seed=4)
        assert all(1 not in edge for edge in leave.final_graph.edges)
        crash = run_protocol(
            graph,
            CDMISProtocol(constants=FAST),
            CD,
            seed=4,
            faults=FaultPlan(seed=4, crashes={1: 50}),
        )
        assert crash.final_graph is None  # topology untouched


class TestAcceptance512:
    def test_512_node_gnp_churn_restabilizes_bit_identically(self):
        # The issue's acceptance run: n=512 G(n,p) under churn=0.01
        # over rounds 10..200 converges to a valid MIS of the final
        # graph, identically in both engines.
        n = 512
        graph = gnp_random_graph(n, 8.0 / (n - 1), seed=11)
        plan = FaultPlan(
            seed=11, churn=ChurnPlan(edge_p=0.01, start=10, stop=200)
        )
        result = run_both(
            graph, plan, seed=11, constants=ConstantsProfile.practical()
        )
        assert result.is_valid_mis()
        assert sum(count for _, count in result.churn_events) >= 1
        # Every event either broke nothing (0) or restabilized (finite).
        assert all(
            settle is not None for _, settle in result.time_to_restabilize
        )
