"""Collision-model semantics: the Section 1.1 truth tables."""

import pytest

from repro.radio import (
    BEEPING,
    BEEPING_SENDER_CD,
    CD,
    NO_CD,
    ObservationKind,
    model_by_name,
)
from repro.radio.observations import message


class TestCDModel:
    def test_silence(self):
        assert CD.resolve(0, None).kind is ObservationKind.SILENCE

    def test_single_message_carries_payload(self):
        obs = CD.resolve(1, 42)
        assert obs.kind is ObservationKind.MESSAGE
        assert obs.payload == 42

    @pytest.mark.parametrize("count", [2, 3, 10])
    def test_collision(self, count):
        assert CD.resolve(count, None).kind is ObservationKind.COLLISION

    def test_flags(self):
        assert CD.detects_collisions and CD.carries_payloads


class TestNoCDModel:
    def test_silence(self):
        assert NO_CD.resolve(0, None).kind is ObservationKind.SILENCE

    def test_single_message(self):
        obs = NO_CD.resolve(1, 7)
        assert obs.is_message and obs.payload == 7

    @pytest.mark.parametrize("count", [2, 3, 10])
    def test_collision_reads_as_silence(self, count):
        obs = NO_CD.resolve(count, None)
        assert obs.kind is ObservationKind.SILENCE
        assert not obs.heard_something

    def test_flags(self):
        assert not NO_CD.detects_collisions


class TestBeepModel:
    def test_silence(self):
        assert BEEPING.resolve(0, None).kind is ObservationKind.SILENCE

    @pytest.mark.parametrize("count", [1, 2, 10])
    def test_any_transmission_beeps(self, count):
        obs = BEEPING.resolve(count, 99)
        assert obs.kind is ObservationKind.BEEP
        assert obs.payload is None  # beeps carry no information

    def test_flags(self):
        assert not BEEPING.carries_payloads


class TestObservationPredicates:
    def test_heard_something(self):
        assert not CD.resolve(0, None).heard_something
        assert CD.resolve(1, 1).heard_something
        assert CD.resolve(2, None).heard_something
        assert BEEPING.resolve(3, None).heard_something
        assert not NO_CD.resolve(2, None).heard_something

    def test_str_forms(self):
        assert str(CD.resolve(0, None)) == "silence"
        assert str(CD.resolve(2, None)) == "collision"
        assert "message" in str(CD.resolve(1, 5))


class TestLookup:
    @pytest.mark.parametrize(
        "name,model",
        [("cd", CD), ("no-cd", NO_CD), ("nocd", NO_CD), ("beep", BEEPING),
         ("beeping", BEEPING), ("CD", CD)],
    )
    def test_model_by_name(self, name, model):
        assert model_by_name(name) is model

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            model_by_name("quantum")


class TestInternedObservationTable:
    """The engine resolves observations from each model's interned
    ``observation_zero`` / ``_one`` / ``_many`` attributes instead of
    calling ``resolve`` per perceiver; the table must therefore agree
    with ``resolve`` for every count bucket of every model."""

    @pytest.mark.parametrize(
        "model", [CD, NO_CD, BEEPING, BEEPING_SENDER_CD], ids=lambda m: m.name
    )
    def test_table_matches_resolve(self, model):
        assert model.observation_zero == model.resolve(0, None)
        if model.observation_one is None:
            # Payload-carrying count-1 outcome: the engine constructs
            # ``message(lone_payload)`` itself.
            assert model.resolve(1, 42) == message(42)
        else:
            assert model.observation_one == model.resolve(1, 42)
        for count in (2, 3, 10):
            assert model.observation_many == model.resolve(count, None)
