"""Property-based engine tests: random scripts, checked invariants.

Hypothesis generates arbitrary per-node action scripts; the engine's
accounting and collision resolution must satisfy model-level invariants
regardless of the script.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import gnp_random_graph
from repro.radio import (
    BEEPING,
    CD,
    NO_CD,
    Listen,
    Sleep,
    TraceRecorder,
    Transmit,
    run_protocol,
)
from tests.radio.test_engine import ScriptProtocol

action_strategy = st.one_of(
    st.just(Transmit()),
    st.just(Listen()),
    st.integers(1, 4).map(Sleep),
)

scripts_strategy = st.integers(2, 8).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.lists(
            st.lists(action_strategy, max_size=8),
            min_size=n,
            max_size=n,
        ),
    )
)


def run_scripted(n, scripts, model, seed=0, trace=None):
    graph = gnp_random_graph(n, 0.5, seed=seed)
    protocol = ScriptProtocol(dict(enumerate(scripts)))
    return graph, run_protocol(graph, protocol, model, seed=seed, trace=trace)


class TestAccountingInvariants:
    @given(scripts_strategy)
    @settings(max_examples=40, deadline=None)
    def test_energy_equals_awake_actions(self, data):
        n, scripts = data
        _, result = run_scripted(n, scripts, CD)
        for node, stats in enumerate(result.node_stats):
            script = scripts[node]
            transmits = sum(1 for action in script if isinstance(action, Transmit))
            listens = sum(1 for action in script if isinstance(action, Listen))
            assert stats.transmit_rounds == transmits
            assert stats.listen_rounds == listens

    @given(scripts_strategy)
    @settings(max_examples=40, deadline=None)
    def test_finish_round_equals_script_duration(self, data):
        n, scripts = data
        _, result = run_scripted(n, scripts, CD)
        for node, stats in enumerate(result.node_stats):
            duration = sum(
                action.rounds if isinstance(action, Sleep) else 1
                for action in scripts[node]
            )
            assert stats.finish_round == duration

    @given(scripts_strategy)
    @settings(max_examples=40, deadline=None)
    def test_rounds_is_max_duration(self, data):
        n, scripts = data
        _, result = run_scripted(n, scripts, CD)
        assert result.rounds == max(
            stats.finish_round for stats in result.node_stats
        )


class TestObservationInvariants:
    @given(scripts_strategy)
    @settings(max_examples=30, deadline=None)
    def test_observations_match_transmitter_sets(self, data):
        n, scripts = data
        trace = TraceRecorder()
        graph, _ = run_scripted(n, scripts, CD, trace=trace)
        # Reconstruct the transmitter set per round and re-derive every
        # listen observation from first principles.
        transmitters_by_round = {}
        for event in trace.transmissions():
            transmitters_by_round.setdefault(event.round, set()).add(event.node)
        for event in trace.events:
            if event.action != "listen":
                continue
            talking = transmitters_by_round.get(event.round, set()) & set(
                graph.neighbors(event.node)
            )
            if len(talking) == 0:
                assert event.observed == "silence"
            elif len(talking) == 1:
                assert event.observed.startswith("message")
            else:
                assert event.observed == "collision"

    @given(scripts_strategy)
    @settings(max_examples=20, deadline=None)
    def test_nocd_never_observes_collision(self, data):
        n, scripts = data
        trace = TraceRecorder()
        run_scripted(n, scripts, NO_CD, trace=trace)
        assert all(
            event.observed in (None, "silence") or event.observed.startswith("message")
            for event in trace.events
        )

    @given(scripts_strategy)
    @settings(max_examples=20, deadline=None)
    def test_beeping_never_carries_payloads(self, data):
        n, scripts = data
        trace = TraceRecorder()
        run_scripted(n, scripts, BEEPING, trace=trace)
        for event in trace.events:
            if event.action == "listen":
                assert event.observed in ("silence", "beep")


class TestSeedInvariance:
    @given(scripts_strategy, st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_repeatability(self, data, seed):
        n, scripts = data
        _, a = run_scripted(n, scripts, CD, seed=seed)
        _, b = run_scripted(n, scripts, CD, seed=seed)
        assert [s.awake_rounds for s in a.node_stats] == [
            s.awake_rounds for s in b.node_stats
        ]
        assert a.rounds == b.rounds
