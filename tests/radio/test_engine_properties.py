"""Property-based engine tests: random scripts and real protocols.

Two layers of Hypothesis coverage:

1. Arbitrary per-node action scripts — the engine's accounting and
   collision resolution must satisfy model-level invariants regardless
   of the script (the original suite).
2. Random graphs × real MIS protocols × crash/wake schedules — the
   optimized engine must stay bit-identical to the frozen reference
   engine, produce valid MIS outputs, and report telemetry whose
   per-component energy ledger sums exactly to the measured energy,
   while leaving the run byte-identical when telemetry is disabled.

The suite runs under the deterministic ``repro-ci`` Hypothesis profile
(see ``tests/conftest.py``), so tier-1 explores the same examples on
every run.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.validation import validate_run
from repro.constants import ConstantsProfile
from repro.core import BeepingMISProtocol, CDMISProtocol, NoCDEnergyMISProtocol
from repro.graphs import gnp_random_graph
from repro.radio import (
    BEEPING,
    CD,
    NO_CD,
    Listen,
    Sleep,
    TraceRecorder,
    Transmit,
    run_protocol,
)
from repro.radio._engine_reference import run_protocol_reference
from tests.radio.test_engine import ScriptProtocol

action_strategy = st.one_of(
    st.just(Transmit()),
    st.just(Listen()),
    st.integers(1, 4).map(Sleep),
)

scripts_strategy = st.integers(2, 8).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.lists(
            st.lists(action_strategy, max_size=8),
            min_size=n,
            max_size=n,
        ),
    )
)


def run_scripted(n, scripts, model, seed=0, trace=None):
    graph = gnp_random_graph(n, 0.5, seed=seed)
    protocol = ScriptProtocol(dict(enumerate(scripts)))
    return graph, run_protocol(graph, protocol, model, seed=seed, trace=trace)


class TestAccountingInvariants:
    @given(scripts_strategy)
    @settings(max_examples=40, deadline=None)
    def test_energy_equals_awake_actions(self, data):
        n, scripts = data
        _, result = run_scripted(n, scripts, CD)
        for node, stats in enumerate(result.node_stats):
            script = scripts[node]
            transmits = sum(1 for action in script if isinstance(action, Transmit))
            listens = sum(1 for action in script if isinstance(action, Listen))
            assert stats.transmit_rounds == transmits
            assert stats.listen_rounds == listens

    @given(scripts_strategy)
    @settings(max_examples=40, deadline=None)
    def test_finish_round_equals_script_duration(self, data):
        n, scripts = data
        _, result = run_scripted(n, scripts, CD)
        for node, stats in enumerate(result.node_stats):
            duration = sum(
                action.rounds if isinstance(action, Sleep) else 1
                for action in scripts[node]
            )
            assert stats.finish_round == duration

    @given(scripts_strategy)
    @settings(max_examples=40, deadline=None)
    def test_rounds_is_max_duration(self, data):
        n, scripts = data
        _, result = run_scripted(n, scripts, CD)
        assert result.rounds == max(
            stats.finish_round for stats in result.node_stats
        )


class TestObservationInvariants:
    @given(scripts_strategy)
    @settings(max_examples=30, deadline=None)
    def test_observations_match_transmitter_sets(self, data):
        n, scripts = data
        trace = TraceRecorder()
        graph, _ = run_scripted(n, scripts, CD, trace=trace)
        # Reconstruct the transmitter set per round and re-derive every
        # listen observation from first principles.
        transmitters_by_round = {}
        for event in trace.transmissions():
            transmitters_by_round.setdefault(event.round, set()).add(event.node)
        for event in trace.events:
            if event.action != "listen":
                continue
            talking = transmitters_by_round.get(event.round, set()) & set(
                graph.neighbors(event.node)
            )
            if len(talking) == 0:
                assert event.observed == "silence"
            elif len(talking) == 1:
                assert event.observed.startswith("message")
            else:
                assert event.observed == "collision"

    @given(scripts_strategy)
    @settings(max_examples=20, deadline=None)
    def test_nocd_never_observes_collision(self, data):
        n, scripts = data
        trace = TraceRecorder()
        run_scripted(n, scripts, NO_CD, trace=trace)
        assert all(
            event.observed in (None, "silence") or event.observed.startswith("message")
            for event in trace.events
        )

    @given(scripts_strategy)
    @settings(max_examples=20, deadline=None)
    def test_beeping_never_carries_payloads(self, data):
        n, scripts = data
        trace = TraceRecorder()
        run_scripted(n, scripts, BEEPING, trace=trace)
        for event in trace.events:
            if event.action == "listen":
                assert event.observed in ("silence", "beep")


class TestSeedInvariance:
    @given(scripts_strategy, st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_repeatability(self, data, seed):
        n, scripts = data
        _, a = run_scripted(n, scripts, CD, seed=seed)
        _, b = run_scripted(n, scripts, CD, seed=seed)
        assert [s.awake_rounds for s in a.node_stats] == [
            s.awake_rounds for s in b.node_stats
        ]
        assert a.rounds == b.rounds


# ----------------------------------------------------------------------
# Real protocols on random graphs: equivalence, validity, telemetry
# ----------------------------------------------------------------------

FAST = ConstantsProfile.fast()

#: (protocol factory, collision model) pairs covering all three model
#: families; factories so every example gets a fresh protocol object.
PROTOCOL_CASES = (
    (lambda: CDMISProtocol(constants=FAST), CD),
    (lambda: BeepingMISProtocol(constants=FAST), BEEPING),
    (lambda: NoCDEnergyMISProtocol(constants=FAST), NO_CD),
)


@st.composite
def engine_cases(draw, schedules=True):
    """A random (graph, protocol, model, seed, crash, wake) engine case."""
    n = draw(st.integers(4, 20))
    p = draw(st.sampled_from([0.1, 0.3, 0.6]))
    graph_seed = draw(st.integers(0, 40))
    graph = gnp_random_graph(n, p, seed=graph_seed)
    protocol_factory, model = draw(st.sampled_from(PROTOCOL_CASES))
    seed = draw(st.integers(0, 40))
    crash_schedule = None
    wake_schedule = None
    if schedules:
        node_ids = st.integers(0, n - 1)
        crash_schedule = draw(
            st.none()
            | st.dictionaries(node_ids, st.integers(0, 30), max_size=3)
        )
        if model is not NO_CD:
            # NoCDEnergyMISProtocol requires synchronized wake-up (it
            # raises SynchronizationError otherwise, by design).
            wake_schedule = draw(
                st.none()
                | st.dictionaries(node_ids, st.integers(0, 10), max_size=3)
            )
    return graph, protocol_factory, model, seed, crash_schedule, wake_schedule


class TestEngineEquivalence:
    """Optimized engine == frozen reference engine, property-based.

    The golden suite pins a fixed grid of cases; this extends the same
    bit-identity contract to Hypothesis-drawn graphs, protocols, seeds,
    and crash/wake schedules (traced and untraced).
    """

    @given(engine_cases())
    @settings(max_examples=25, deadline=None)
    def test_optimized_matches_reference(self, case):
        graph, protocol_factory, model, seed, crash, wake = case
        kwargs = dict(seed=seed, crash_schedule=crash, wake_schedule=wake)
        reference = run_protocol_reference(
            graph, protocol_factory(), model, **kwargs
        )
        optimized = run_protocol(graph, protocol_factory(), model, **kwargs)
        assert optimized == reference

    @given(engine_cases())
    @settings(max_examples=15, deadline=None)
    def test_traces_match_reference(self, case):
        graph, protocol_factory, model, seed, crash, wake = case
        kwargs = dict(seed=seed, crash_schedule=crash, wake_schedule=wake)
        ref_trace, opt_trace = TraceRecorder(), TraceRecorder()
        reference = run_protocol_reference(
            graph, protocol_factory(), model, trace=ref_trace, **kwargs
        )
        optimized = run_protocol(
            graph, protocol_factory(), model, trace=opt_trace, **kwargs
        )
        assert optimized == reference
        assert opt_trace.events == ref_trace.events


class TestMISValidity:
    """Fault-free runs of the paper's protocols output a valid MIS."""

    @given(engine_cases(schedules=False))
    @settings(max_examples=25, deadline=None)
    def test_output_is_valid_mis(self, case):
        graph, protocol_factory, model, seed, _, _ = case
        result = run_protocol(graph, protocol_factory(), model, seed=seed)
        report = validate_run(result)
        assert report.valid, report.describe()


class TestTelemetryInvariants:
    """EngineTelemetry is consistent with the run it describes."""

    @given(engine_cases())
    @settings(max_examples=25, deadline=None)
    def test_round_partition_and_energy(self, case):
        graph, protocol_factory, model, seed, crash, wake = case
        result = run_protocol(
            graph,
            protocol_factory(),
            model,
            seed=seed,
            crash_schedule=crash,
            wake_schedule=wake,
            telemetry=True,
        )
        tel = result.telemetry
        assert tel is not None
        # Every processed round took exactly one resolution path.
        assert tel.rounds_processed == (
            tel.zero_tx_rounds
            + tel.one_tx_rounds
            + tel.scatter_dict_rounds
            + tel.scatter_bincount_rounds
        )
        assert tel.rounds_skipped >= 0
        assert tel.heap_pushes >= 0
        assert tel.slot_reuses >= 0 and tel.slot_allocs >= 0
        assert tel.wall_s >= 0.0
        # The per-component energy ledger is exact, not sampled: it sums
        # to the measured energy globally and per node.
        assert tel.total_energy == sum(
            stats.awake_rounds for stats in result.node_stats
        )
        assert dict(tel.energy_by_component) == _merged_node_ledgers(result)
        for stats in result.node_stats:
            assert sum(stats.energy_by_component.values()) == stats.awake_rounds

    @given(engine_cases())
    @settings(max_examples=15, deadline=None)
    def test_telemetry_does_not_change_the_run(self, case):
        graph, protocol_factory, model, seed, crash, wake = case
        kwargs = dict(seed=seed, crash_schedule=crash, wake_schedule=wake)
        plain = run_protocol(graph, protocol_factory(), model, **kwargs)
        instrumented = run_protocol(
            graph, protocol_factory(), model, telemetry=True, **kwargs
        )
        assert plain.telemetry is None
        assert instrumented.telemetry is not None
        # telemetry is excluded from equality; everything else is equal.
        assert plain == instrumented


def _merged_node_ledgers(result):
    """Sum the per-node energy ledgers into one component → rounds map."""
    totals = {}
    for stats in result.node_stats:
        for component, rounds in stats.energy_by_component.items():
            totals[component] = totals.get(component, 0) + rounds
    return totals
