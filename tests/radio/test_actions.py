"""Validation tests for actions and node-context plumbing."""

import random

import pytest

from repro.errors import ProtocolError
from repro.radio import Decision, Listen, Sleep, SleepUntil, Transmit
from repro.radio.node import NodeContext


class TestActions:
    def test_transmit_default_payload_is_unary(self):
        assert Transmit().payload == 1

    def test_sleep_validates_duration(self):
        assert Sleep(0).rounds == 0
        assert Sleep(5).rounds == 5
        with pytest.raises(ProtocolError):
            Sleep(-1)

    def test_sleep_until_validates_target(self):
        assert SleepUntil(0).target == 0
        with pytest.raises(ProtocolError):
            SleepUntil(-3)

    def test_actions_are_frozen(self):
        with pytest.raises(AttributeError):
            Transmit().payload = 2
        with pytest.raises(AttributeError):
            Sleep(1).rounds = 2

    def test_listen_is_stateless(self):
        assert Listen() == Listen()


class TestNodeContext:
    def make_ctx(self):
        return NodeContext(node=3, rng=random.Random(0), n=16, delta=4)

    def test_exposes_model_knowledge(self):
        ctx = self.make_ctx()
        assert ctx.n == 16
        assert ctx.delta == 4
        assert ctx.node == 3

    def test_initial_state(self):
        ctx = self.make_ctx()
        assert ctx.decision is Decision.UNDECIDED
        assert ctx.now == 0
        assert ctx.info == {}
        assert ctx.energy_by_component == {}

    def test_charge_attributes_to_component(self):
        ctx = self.make_ctx()
        ctx._charge_awake_round()
        ctx.set_component("phase-2")
        ctx._charge_awake_round()
        ctx._charge_awake_round()
        assert ctx.energy_by_component == {"default": 1, "phase-2": 2}

    def test_decide_is_irrevocable(self):
        ctx = self.make_ctx()
        ctx.decide(Decision.OUT_MIS)
        ctx.decide(Decision.OUT_MIS)  # idempotent ok
        with pytest.raises(ProtocolError):
            ctx.decide(Decision.IN_MIS)

    def test_repr(self):
        assert "node=3" in repr(self.make_ctx())
