"""Multichannel radio subsystem: per-channel collision resolution.

The channel dimension's core contracts:

* **C=1 transparency** — ``MultichannelModel(base, channels=1)`` is
  bit-identical to the bare base model through both scalar engines
  (values, traces, *and* cache keys), and the C=1 channel-hopping
  protocol is bit-identical to the single-channel strawman it lifts.
* **optimized == reference at every C** — the golden contract extends
  to multichannel rounds, including a Hypothesis fuzz over random
  channel choices.
* **per-channel isolation** — transmitters on one channel are inaudible
  on every other.
"""

import pytest

from repro.baselines import MultichannelMISProtocol, NaiveCDLubyProtocol
from repro.constants import ConstantsProfile
from repro.errors import ConfigurationError, SimulationError
from repro.graphs import gnp_random_graph
from repro.radio import CD, Listen, Protocol, Transmit, run_protocol
from repro.radio._engine_reference import run_protocol_reference
from repro.radio.models import BEEPING, NO_CD, MultichannelModel
from repro.radio.trace import TraceRecorder

FAST = ConstantsProfile.fast()

GRAPH = gnp_random_graph(40, 0.2, seed=3)
GRAPH_DENSE = gnp_random_graph(48, 0.3, seed=9)


def assert_bit_identical(graph, protocol, model, seed, **kwargs):
    reference = run_protocol_reference(graph, protocol, model, seed=seed, **kwargs)
    optimized = run_protocol(graph, protocol, model, seed=seed, **kwargs)
    assert optimized == reference

    ref_trace, opt_trace = TraceRecorder(), TraceRecorder()
    run_protocol_reference(graph, protocol, model, seed=seed, trace=ref_trace, **kwargs)
    run_protocol(graph, protocol, model, seed=seed, trace=opt_trace, **kwargs)
    assert opt_trace.events == ref_trace.events
    return optimized


class TestMultichannelModel:
    def test_channels_one_keeps_base_name(self):
        assert MultichannelModel(CD, 1).name == CD.name
        assert MultichannelModel(NO_CD, 1).name == NO_CD.name

    def test_multi_channel_name_is_suffixed(self):
        assert MultichannelModel(CD, 4).name == "cd@c4"
        assert MultichannelModel(BEEPING, 2).name == "beep@c2"

    def test_rejects_nesting(self):
        with pytest.raises(ValueError):
            MultichannelModel(MultichannelModel(CD, 2), 2)

    @pytest.mark.parametrize("channels", [0, -1, 1.5, "4"])
    def test_rejects_bad_channel_counts(self, channels):
        with pytest.raises(ValueError):
            MultichannelModel(CD, channels)

    def test_forwards_base_semantics(self):
        lifted = MultichannelModel(CD, 4)
        assert lifted.detects_collisions == CD.detects_collisions
        assert lifted.carries_payloads == CD.carries_payloads
        for count in (0, 1, 2, 7):
            assert lifted.resolve(count, "m") == CD.resolve(count, "m")


class TestChannelsOneTransparency:
    """MultichannelModel(base, 1) is invisible everywhere."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_wrapped_run_bit_identical_to_bare(self, seed):
        protocol = NaiveCDLubyProtocol(constants=FAST)
        bare = run_protocol(GRAPH, protocol, CD, seed=seed)
        wrapped = run_protocol(GRAPH, protocol, MultichannelModel(CD, 1), seed=seed)
        assert wrapped == bare

    @pytest.mark.parametrize("seed", [0, 1])
    def test_wrapped_reference_bit_identical_to_bare(self, seed):
        protocol = NaiveCDLubyProtocol(constants=FAST)
        bare = run_protocol_reference(GRAPH, protocol, CD, seed=seed)
        wrapped = run_protocol_reference(
            GRAPH, protocol, MultichannelModel(CD, 1), seed=seed
        )
        assert wrapped == bare

    def test_wrapped_traces_match_bare(self):
        protocol = NaiveCDLubyProtocol(constants=FAST)
        bare_trace, wrapped_trace = TraceRecorder(), TraceRecorder()
        run_protocol(GRAPH, protocol, CD, seed=5, trace=bare_trace)
        run_protocol(
            GRAPH, protocol, MultichannelModel(CD, 1), seed=5, trace=wrapped_trace
        )
        assert wrapped_trace.events == bare_trace.events

    def test_cache_key_unchanged_at_channels_one(self):
        from repro.exec.cache import trial_key

        protocol = NaiveCDLubyProtocol(constants=FAST)
        params = dict(protocol=protocol, graph_spec="g/n=40", seed=7)
        bare = trial_key(model_name=CD.name, **params)
        wrapped = trial_key(model_name=MultichannelModel(CD, 1).name, **params)
        lifted = trial_key(model_name=MultichannelModel(CD, 2).name, **params)
        assert wrapped == bare
        assert lifted != bare

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_c1_protocol_bit_identical_to_strawman(self, seed):
        baseline = run_protocol(
            GRAPH, NaiveCDLubyProtocol(constants=FAST), CD, seed=seed
        )
        hopping = run_protocol(
            GRAPH, MultichannelMISProtocol(constants=FAST, channels=1), CD, seed=seed
        )
        assert hopping.node_stats == baseline.node_stats
        assert hopping.rounds == baseline.rounds
        assert hopping.mis == baseline.mis


class TestMultichannelGolden:
    @pytest.mark.parametrize("channels", [2, 4, 8])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_mc_luby_optimized_equals_reference(self, channels, seed):
        protocol = MultichannelMISProtocol(constants=FAST, channels=channels)
        result = assert_bit_identical(
            GRAPH, protocol, MultichannelModel(CD, channels), seed=seed
        )
        assert result.is_valid_mis()

    @pytest.mark.parametrize("seed", [0, 1])
    def test_beeping_base_model(self, seed):
        protocol = MultichannelMISProtocol(constants=FAST, channels=4)
        result = assert_bit_identical(
            GRAPH_DENSE, protocol, MultichannelModel(BEEPING, 4), seed=seed
        )
        assert result.is_valid_mis()

    def test_compatibility_resolves_through_wrapper(self):
        # naive-cd-luby accepts cd; the lifted cd@c2 must still qualify.
        protocol = NaiveCDLubyProtocol(constants=FAST)
        run_protocol(GRAPH, protocol, MultichannelModel(CD, 2), seed=0)

    def test_incompatible_base_still_rejected(self):
        protocol = MultichannelMISProtocol(constants=FAST, channels=2)
        with pytest.raises(SimulationError):
            run_protocol(GRAPH, protocol, MultichannelModel(NO_CD, 2), seed=0)


class _ChannelIsolationProbe(Protocol):
    """Node 0 transmits on channel 1; node 1 listens on channel 0 then 1."""

    name = "channel-isolation-probe"
    compatible_models = ("cd",)

    def max_rounds_hint(self, n, delta):
        return 4

    def run(self, ctx):
        if ctx.node == 0:
            yield Transmit("secret", 1)
            yield Transmit("secret", 1)
        else:
            first = yield Listen(0)
            second = yield Listen(1)
            ctx.info["cross"] = first.heard_something
            ctx.info["same"] = second.heard_something
        ctx.decide(1 if ctx.node == 0 else 0)


class TestChannelIsolation:
    @pytest.mark.parametrize("runner", [run_protocol, run_protocol_reference])
    def test_other_channels_are_inaudible(self, runner):
        from repro.graphs.generators import path_graph

        graph = path_graph(2)
        result = runner(
            graph, _ChannelIsolationProbe(), MultichannelModel(CD, 2), seed=0
        )
        assert result.node_info[1]["cross"] is False
        assert result.node_info[1]["same"] is True


class TestMultichannelTelemetry:
    def test_round_buckets_partition_and_channels_counted(self):
        protocol = MultichannelMISProtocol(constants=FAST, channels=4)
        result = run_protocol(
            GRAPH_DENSE,
            protocol,
            MultichannelModel(CD, 4),
            seed=1,
            telemetry=True,
        )
        tel = result.telemetry
        assert tel.multichannel_rounds > 0
        assert (
            tel.rounds_processed
            == tel.zero_tx_rounds
            + tel.one_tx_rounds
            + tel.scatter_dict_rounds
            + tel.scatter_bincount_rounds
        )
        assert set(tel.channel_tx_rounds) <= set(range(4))
        assert sum(tel.channel_tx_rounds.values()) > 0

    def test_single_channel_run_has_no_channel_telemetry(self):
        result = run_protocol(
            GRAPH,
            NaiveCDLubyProtocol(constants=FAST),
            CD,
            seed=0,
            telemetry=True,
        )
        assert result.telemetry.multichannel_rounds == 0
        assert result.telemetry.channel_tx_rounds == {}


class TestProtocolValidation:
    @pytest.mark.parametrize("channels", [0, -3, True, 2.0])
    def test_rejects_bad_channel_counts(self, channels):
        with pytest.raises(ConfigurationError):
            MultichannelMISProtocol(constants=FAST, channels=channels)


# ----------------------------------------------------------------------
# Hypothesis fuzz (skipped cleanly when hypothesis is unavailable)
# ----------------------------------------------------------------------

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402


class _RandomChannelProbe(Protocol):
    """Every node transmits/listens on independently drawn channels."""

    name = "random-channel-probe"
    compatible_models = ("cd",)

    def __init__(self, channels, steps):
        self.channels = channels
        self.steps = steps

    def max_rounds_hint(self, n, delta):
        return self.steps + 1

    def run(self, ctx):
        heard = 0
        for _ in range(self.steps):
            channel = ctx.rng.randrange(self.channels)
            if ctx.rng.random() < 0.5:
                yield Transmit(ctx.node, channel)
            else:
                observation = yield Listen(channel)
                if observation.heard_something:
                    heard += 1
        ctx.info["heard"] = heard
        ctx.decide(1)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32),
    channels=st.integers(min_value=1, max_value=6),
    n=st.integers(min_value=4, max_value=24),
    p=st.sampled_from([0.15, 0.4]),
)
def test_fuzz_random_channels_golden(seed, channels, n, p):
    graph = gnp_random_graph(n, p, seed=seed % 1000)
    protocol = _RandomChannelProbe(channels, steps=12)
    model = MultichannelModel(CD, channels)
    reference = run_protocol_reference(graph, protocol, model, seed=seed)
    optimized = run_protocol(graph, protocol, model, seed=seed)
    assert optimized == reference


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32),
    channels=st.sampled_from([2, 3, 5, 8]),
)
def test_fuzz_mc_luby_golden_and_valid(seed, channels):
    graph = gnp_random_graph(30, 0.25, seed=seed % 100)
    protocol = MultichannelMISProtocol(constants=FAST, channels=channels)
    model = MultichannelModel(CD, channels)
    reference = run_protocol_reference(graph, protocol, model, seed=seed)
    optimized = run_protocol(graph, protocol, model, seed=seed)
    assert optimized == reference
    assert optimized.is_valid_mis()
