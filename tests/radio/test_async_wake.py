"""Tests for the asynchronous wake-up knob.

The paper assumes synchronous wake-up (Section 1.1, following [18, 36]).
The engine's ``wake_schedule`` lets experiments quantify that
assumption: Algorithm 1 keeps producing independent sets under skew
(losers still hear winners that are ahead of them only if their phases
overlap), but maximality can break — exactly why the assumption exists.
"""

import pytest

from repro.core import CDMISProtocol, NoCDEnergyMISProtocol
from repro.errors import ProtocolError, SynchronizationError
from repro.graphs import empty_graph, gnp_random_graph, path_graph
from repro.radio import CD, NO_CD, Listen, run_protocol
from tests.radio.test_engine import ScriptProtocol


class TestWakeMechanics:
    def test_delayed_start(self):
        protocol = ScriptProtocol({0: [Listen()]})
        result = run_protocol(
            empty_graph(1), protocol, CD, seed=0, wake_schedule={0: 10}
        )
        assert result.node_stats[0].finish_round == 11
        assert result.node_stats[0].awake_rounds == 1

    def test_default_wake_is_zero(self):
        protocol = ScriptProtocol({0: [Listen()], 1: [Listen()]})
        result = run_protocol(
            empty_graph(2), protocol, CD, seed=0, wake_schedule={1: 5}
        )
        assert result.node_stats[0].finish_round == 1
        assert result.node_stats[1].finish_round == 6

    def test_negative_wake_rejected(self):
        protocol = ScriptProtocol({0: [Listen()]})
        with pytest.raises(ProtocolError):
            run_protocol(
                empty_graph(1), protocol, CD, seed=0, wake_schedule={0: -1}
            )

    def test_skew_shifts_interaction(self):
        # With node 1 delayed past node 0's transmissions, 0 is unheard.
        from repro.radio import Transmit

        protocol = ScriptProtocol({0: [Transmit()], 1: [Listen()]})
        aligned = run_protocol(path_graph(2), protocol, CD, seed=0)
        skewed = run_protocol(
            path_graph(2), protocol, CD, seed=0, wake_schedule={1: 3}
        )
        assert aligned.node_info[1]["seen"] == ["message(1)"]
        assert skewed.node_info[1]["seen"] == ["silence"]


class TestAlgorithmSensitivity:
    def test_algorithm1_synchronous_is_baseline(self, fast_constants):
        graph = gnp_random_graph(32, 0.15, seed=1)
        result = run_protocol(
            graph, CDMISProtocol(constants=fast_constants), CD, seed=1,
            wake_schedule={},
        )
        assert result.is_valid_mis()

    def test_algorithm1_breaks_under_phase_skew(self, fast_constants):
        # The negative result that justifies the paper's synchronous
        # wake-up assumption: a node skewed by a whole phase never hears
        # an early winner (it was asleep while the winner competed and
        # confirmed, and the winner then terminated), so both join —
        # independence breaks essentially always.
        graph = gnp_random_graph(32, 0.15, seed=2)
        phase = fast_constants.rank_bits(32) + 1
        wake = {node: phase * (node % 3) for node in graph.nodes}
        failures = 0
        for seed in range(10):
            result = run_protocol(
                graph,
                CDMISProtocol(constants=fast_constants),
                CD,
                seed=seed,
                wake_schedule=wake,
            )
            if not graph.is_independent_set(result.mis):
                failures += 1
        assert failures >= 8

    def test_algorithm1_breaks_under_arbitrary_skew(self, fast_constants):
        graph = gnp_random_graph(32, 0.15, seed=3)
        validity_failures = 0
        for seed in range(10):
            wake = {
                node: (seed * 7 + node * 13) % 29 for node in graph.nodes
            }
            result = run_protocol(
                graph,
                CDMISProtocol(constants=fast_constants),
                CD,
                seed=seed,
                wake_schedule=wake,
            )
            if not result.is_valid_mis():
                validity_failures += 1
        assert validity_failures >= 8

    def test_algorithm2_requires_synchronous_start(self, fast_constants):
        # Algorithm 2's barrier arithmetic assumes a shared round 0; a
        # skewed node trips the synchronization guard immediately —
        # documenting (not hiding) the assumption.
        graph = path_graph(6)
        with pytest.raises(SynchronizationError):
            run_protocol(
                graph,
                NoCDEnergyMISProtocol(constants=fast_constants),
                NO_CD,
                seed=0,
                wake_schedule={2: 7},
            )
