"""Engine semantics: collisions, energy accounting, sleep fast-forwarding.

These tests drive the engine with purpose-built miniature protocols so
every semantic rule of Section 1.1 is pinned down independently of the
paper's algorithms.
"""

import pytest

from repro.errors import (
    MessageSizeError,
    ProtocolError,
    SimulationError,
)
from repro.graphs import Graph, complete_graph, empty_graph, path_graph, star_graph
from repro.radio import (
    CD,
    NO_CD,
    Decision,
    Listen,
    Protocol,
    Sleep,
    SleepUntil,
    Transmit,
    payload_bits,
    run_protocol,
)


class ScriptProtocol(Protocol):
    """Replays a fixed per-node action script; records observations.

    Scripts map node -> list of actions.  Observations land in
    ``ctx.info["seen"]`` as strings.
    """

    name = "script"
    compatible_models = ("cd", "no-cd", "beep")

    def __init__(self, scripts):
        self.scripts = scripts

    def run(self, ctx):
        seen = []
        ctx.info["seen"] = seen
        for action in self.scripts.get(ctx.node, []):
            observation = yield action
            if isinstance(action, Listen):
                seen.append(str(observation))
            else:
                assert observation is None, "only listens receive observations"


class TestCollisionResolution:
    def test_single_transmitter_is_heard(self):
        graph = path_graph(2)
        protocol = ScriptProtocol({0: [Transmit(5)], 1: [Listen()]})
        result = run_protocol(graph, protocol, CD, seed=0)
        assert result.node_info[1]["seen"] == ["message(5)"]

    def test_two_transmitters_collide_in_cd(self):
        graph = star_graph(3)  # hub 0, leaves 1, 2
        protocol = ScriptProtocol({1: [Transmit()], 2: [Transmit()], 0: [Listen()]})
        result = run_protocol(graph, protocol, CD, seed=0)
        assert result.node_info[0]["seen"] == ["collision"]

    def test_two_transmitters_silent_in_nocd(self):
        graph = star_graph(3)
        protocol = ScriptProtocol({1: [Transmit()], 2: [Transmit()], 0: [Listen()]})
        result = run_protocol(graph, protocol, NO_CD, seed=0)
        assert result.node_info[0]["seen"] == ["silence"]

    def test_non_neighbor_transmission_not_heard(self):
        graph = Graph(3, [(0, 1)])  # 2 is isolated
        protocol = ScriptProtocol({0: [Transmit()], 2: [Listen()]})
        result = run_protocol(graph, protocol, CD, seed=0)
        assert result.node_info[2]["seen"] == ["silence"]

    def test_transmitter_does_not_hear_itself_or_others(self):
        # Sender-side CD is not available: a transmitting node gets None.
        graph = path_graph(2)
        protocol = ScriptProtocol({0: [Transmit()], 1: [Transmit()]})
        result = run_protocol(graph, protocol, CD, seed=0)
        # No assertion errors inside the script == senders saw None.
        assert result.rounds >= 0

    def test_sleeping_node_misses_message(self):
        graph = path_graph(2)
        protocol = ScriptProtocol(
            {0: [Transmit()], 1: [Sleep(1), Listen()]}
        )
        result = run_protocol(graph, protocol, CD, seed=0)
        assert result.node_info[1]["seen"] == ["silence"]

    def test_interference_is_local(self):
        # 0-1-2-3 path: 0 and 3 both transmit; 1 hears 0, 2 hears 3.
        graph = path_graph(4)
        protocol = ScriptProtocol(
            {0: [Transmit("a")], 3: [Transmit("b")], 1: [Listen()], 2: [Listen()]}
        )
        result = run_protocol(graph, protocol, CD, seed=0)
        assert result.node_info[1]["seen"] == ["message('a')"]
        assert result.node_info[2]["seen"] == ["message('b')"]

    def test_rounds_align_actions(self):
        # Node 1's transmit is at round 1; node 0 listens rounds 0 and 1.
        graph = path_graph(2)
        protocol = ScriptProtocol(
            {0: [Listen(), Listen()], 1: [Sleep(1), Transmit()]}
        )
        result = run_protocol(graph, protocol, CD, seed=0)
        assert result.node_info[0]["seen"] == ["silence", "message(1)"]


class TestEnergyAccounting:
    def test_awake_rounds_counted(self):
        graph = empty_graph(1)
        protocol = ScriptProtocol(
            {0: [Transmit(), Listen(), Sleep(10), Listen()]}
        )
        result = run_protocol(graph, protocol, CD, seed=0)
        stats = result.node_stats[0]
        assert stats.transmit_rounds == 1
        assert stats.listen_rounds == 2
        assert stats.awake_rounds == 3

    def test_sleep_costs_nothing(self):
        graph = empty_graph(1)
        protocol = ScriptProtocol({0: [Sleep(1000)]})
        result = run_protocol(graph, protocol, CD, seed=0)
        assert result.max_energy == 0
        assert result.rounds == 1000

    def test_rounds_is_max_finish(self):
        graph = empty_graph(2)
        protocol = ScriptProtocol({0: [Listen()], 1: [Sleep(5), Listen()]})
        result = run_protocol(graph, protocol, CD, seed=0)
        assert result.rounds == 6
        assert result.node_stats[0].finish_round == 1
        assert result.node_stats[1].finish_round == 6

    def test_component_ledger(self):
        class LedgerProtocol(Protocol):
            name = "ledger"

            def run(self, ctx):
                ctx.set_component("alpha")
                yield Transmit()
                yield Listen()
                ctx.set_component("beta")
                yield Listen()

        result = run_protocol(empty_graph(1), LedgerProtocol(), CD, seed=0)
        assert result.node_stats[0].energy_by_component == {"alpha": 2, "beta": 1}
        assert result.energy_by_component() == {"alpha": 2, "beta": 1}


class TestSleepFastForwarding:
    def test_long_sleeps_are_cheap(self):
        # 10M rounds of sleep must not take 10M engine iterations; this
        # just asserts it completes (a loop would time the test out).
        graph = empty_graph(2)
        protocol = ScriptProtocol(
            {0: [Sleep(10_000_000), Listen()], 1: [Listen()]}
        )
        result = run_protocol(graph, protocol, CD, seed=0)
        assert result.rounds == 10_000_001

    def test_sleep_until(self):
        class BarrierProtocol(Protocol):
            name = "barrier"

            def run(self, ctx):
                yield SleepUntil(100)
                assert ctx.now == 100
                yield Transmit()
                ctx.info["done_at"] = ctx.now

        result = run_protocol(empty_graph(1), BarrierProtocol(), CD, seed=0)
        assert result.node_info[0]["done_at"] == 101
        assert result.rounds == 101

    def test_sleep_until_now_is_noop(self):
        class NoopBarrier(Protocol):
            name = "noop-barrier"

            def run(self, ctx):
                yield Listen()
                yield SleepUntil(1)  # == ctx.now, zero duration
                yield Listen()

        result = run_protocol(empty_graph(1), NoopBarrier(), CD, seed=0)
        assert result.node_stats[0].awake_rounds == 2
        assert result.rounds == 2

    def test_sleep_until_past_raises(self):
        class BadBarrier(Protocol):
            name = "bad-barrier"

            def run(self, ctx):
                yield Listen()
                yield Listen()
                yield SleepUntil(1)

        with pytest.raises(ProtocolError):
            run_protocol(empty_graph(1), BadBarrier(), CD, seed=0)

    def test_zero_sleep_allowed(self):
        protocol = ScriptProtocol({0: [Sleep(0), Listen()]})
        result = run_protocol(empty_graph(1), protocol, CD, seed=0)
        assert result.rounds == 1


class TestGuards:
    def test_max_rounds_watchdog(self):
        class Forever(Protocol):
            name = "forever"

            def run(self, ctx):
                while True:
                    yield Listen()

        with pytest.raises(SimulationError):
            run_protocol(empty_graph(1), Forever(), CD, seed=0, max_rounds=50)

    def test_incompatible_model_rejected(self):
        class CDOnly(Protocol):
            name = "cd-only"
            compatible_models = ("cd",)

            def run(self, ctx):
                yield Listen()

        with pytest.raises(SimulationError):
            run_protocol(empty_graph(1), CDOnly(), NO_CD, seed=0)
        # ... unless the check is disabled.
        result = run_protocol(
            empty_graph(1), CDOnly(), NO_CD, seed=0, check_model_compatibility=False
        )
        assert result.rounds == 1

    def test_unknown_action_rejected(self):
        class Weird(Protocol):
            name = "weird"

            def run(self, ctx):
                yield "transmit"

        with pytest.raises(ProtocolError):
            run_protocol(empty_graph(1), Weird(), CD, seed=0)

    def test_message_size_enforced(self):
        protocol = ScriptProtocol({0: [Transmit(1 << 64)], 1: [Listen()]})
        with pytest.raises(MessageSizeError):
            run_protocol(path_graph(2), protocol, CD, seed=0, message_bits=32)
        # Within budget passes.
        protocol = ScriptProtocol({0: [Transmit(3)], 1: [Listen()]})
        result = run_protocol(path_graph(2), protocol, CD, seed=0, message_bits=32)
        assert result.node_info[1]["seen"] == ["message(3)"]

    def test_payload_bits(self):
        assert payload_bits(None) == 0
        assert payload_bits(True) == 1
        assert payload_bits(1) == 1
        assert payload_bits(255) == 8
        assert payload_bits("ab") == 16
        assert payload_bits(b"abc") == 24
        assert payload_bits(3.5) > 0


class TestDecisions:
    def test_decide_recorded(self):
        class Decider(Protocol):
            name = "decider"

            def run(self, ctx):
                yield Listen()
                ctx.decide(Decision.IN_MIS if ctx.node == 0 else Decision.OUT_MIS)

        result = run_protocol(empty_graph(2), Decider(), CD, seed=0)
        assert result.mis == frozenset({0})
        assert result.undecided == frozenset()

    def test_decision_flip_raises(self):
        class Flipper(Protocol):
            name = "flipper"

            def run(self, ctx):
                yield Listen()
                ctx.decide(Decision.IN_MIS)
                ctx.decide(Decision.OUT_MIS)

        with pytest.raises(ProtocolError):
            run_protocol(empty_graph(1), Flipper(), CD, seed=0)

    def test_redundant_decision_allowed(self):
        class Repeater(Protocol):
            name = "repeater"

            def run(self, ctx):
                yield Listen()
                ctx.decide(Decision.IN_MIS)
                ctx.decide(Decision.IN_MIS)

        result = run_protocol(empty_graph(1), Repeater(), CD, seed=0)
        assert result.mis == frozenset({0})


class TestDeterminism:
    def test_same_seed_same_result(self, fast_constants):
        from repro.core import CDMISProtocol

        graph = complete_graph(8)
        protocol = CDMISProtocol(constants=fast_constants)
        a = run_protocol(graph, protocol, CD, seed=9)
        b = run_protocol(graph, protocol, CD, seed=9)
        assert a.mis == b.mis
        assert a.rounds == b.rounds
        assert [s.awake_rounds for s in a.node_stats] == [
            s.awake_rounds for s in b.node_stats
        ]

    def test_different_seed_usually_differs(self, fast_constants):
        from repro.core import CDMISProtocol

        graph = complete_graph(16)
        protocol = CDMISProtocol(constants=fast_constants)
        outcomes = {
            tuple(sorted(run_protocol(graph, protocol, CD, seed=s).mis))
            for s in range(8)
        }
        assert len(outcomes) > 1

    def test_per_node_streams_independent(self):
        class RandomReporter(Protocol):
            name = "random-reporter"

            def run(self, ctx):
                ctx.info["draw"] = ctx.rng.random()
                yield Listen()

        result = run_protocol(empty_graph(4), RandomReporter(), CD, seed=1)
        draws = [info["draw"] for info in result.node_info]
        assert len(set(draws)) == 4
