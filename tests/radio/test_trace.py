"""Tests for execution tracing."""

import json

from repro.graphs import path_graph
from repro.radio import (
    CD,
    Listen,
    NullTrace,
    TraceEvent,
    TraceRecorder,
    Transmit,
    run_protocol,
)
from tests.radio.test_engine import ScriptProtocol


def traced_run(trace):
    protocol = ScriptProtocol({0: [Transmit(7), Listen()], 1: [Listen(), Transmit(8)]})
    return run_protocol(path_graph(2), protocol, CD, seed=0, trace=trace)


class TestTraceRecorder:
    def test_records_all_awake_events(self):
        trace = TraceRecorder()
        traced_run(trace)
        assert len(trace) == 4
        kinds = [(event.node, event.action) for event in trace]
        assert (0, "transmit") in kinds and (1, "listen") in kinds

    def test_listen_observation_captured(self):
        trace = TraceRecorder()
        traced_run(trace)
        listens = [event for event in trace if event.action == "listen"]
        assert any(event.observed == "message(7)" for event in listens)

    def test_transmit_payload_captured(self):
        trace = TraceRecorder()
        traced_run(trace)
        assert {event.payload for event in trace.transmissions()} == {7, 8}

    def test_round_and_node_filters(self):
        trace = TraceRecorder()
        traced_run(trace)
        assert all(event.node == 0 for event in trace.for_node(0))
        assert all(event.round == 1 for event in trace.for_round(1))
        assert len(trace.for_round(0)) == 2

    def test_predicate_filter(self):
        trace = TraceRecorder(predicate=lambda event: event.action == "transmit")
        traced_run(trace)
        assert len(trace) == 2

    def test_max_events_cap(self):
        trace = TraceRecorder(max_events=1)
        traced_run(trace)
        assert len(trace) == 1
        assert trace.truncated

    def test_jsonl_export(self, tmp_path):
        trace = TraceRecorder()
        traced_run(trace)
        lines = trace.to_jsonl().splitlines()
        assert len(lines) == 4
        parsed = json.loads(lines[0])
        assert {"round", "node", "action"} <= set(parsed)
        path = tmp_path / "trace.jsonl"
        trace.save_jsonl(path)
        assert len(path.read_text().strip().splitlines()) == 4

    def test_csv_export(self):
        trace = TraceRecorder()
        traced_run(trace)
        csv = trace.to_csv()
        assert csv.startswith("round,node,action")
        assert len(csv.strip().splitlines()) == 5  # header + 4 events


class TestNullTrace:
    def test_discards(self):
        trace = NullTrace()
        trace.record(TraceEvent(round=0, node=0, action="listen"))
        assert not trace.enabled

    def test_engine_default_is_no_trace(self):
        result = traced_run(None)
        assert result.rounds == 2
