"""Golden tests: transition tables are bit-identical to their coroutines.

Every registered table builder is run through the **scalar** engine,
wrapped as an ordinary protocol, and compared against the coroutine
implementation on the same graph/model/seed.  The contract is exact
equality — rounds, per-node stats, and per-node info — because the
table interpreter consumes the trial RNG in precisely the coroutine's
draw positions.  This is what lets the batch backend's statistical
tests anchor on the coroutine semantics: table == coroutine (bitwise),
batch == table (distributionally).
"""

import pytest

from repro.analysis.experiments.backoff_probe import BackoffProbe
from repro.baselines.backoff_sim_mis import NaiveBackoffMISProtocol
from repro.baselines.naive_cd_luby import NaiveCDLubyProtocol
from repro.constants import ConstantsProfile
from repro.core.cd_mis import BeepingMISProtocol, CDMISProtocol
from repro.graphs import gnp_random_graph, star_graph
from repro.radio._engine_reference import run_protocol_reference
from repro.radio.batch import (
    as_table_protocol,
    compile_table_for,
    has_table_builder,
)
from repro.radio.engine import run_protocol
from repro.radio.models import BEEPING, CD, NO_CD


def assert_bit_identical(graph, protocol, model, seeds, engine=run_protocol):
    """Table form through ``engine`` must equal the coroutine exactly."""
    table = as_table_protocol(protocol, graph.num_nodes, graph.max_degree())
    assert table is not None, f"no table for {protocol.name}"
    for seed in seeds:
        expected = engine(graph, protocol, model, seed=seed)
        actual = engine(graph, table, model, seed=seed)
        assert actual.rounds == expected.rounds, (protocol.name, seed)
        assert actual.node_stats == expected.node_stats, (protocol.name, seed)
        assert actual.node_info == expected.node_info, (protocol.name, seed)


@pytest.mark.parametrize("seed", [0, 1, 7])
def test_cd_mis_table_bit_identical(seed):
    graph = gnp_random_graph(60, 0.15, seed=2)
    protocol = CDMISProtocol(constants=ConstantsProfile.practical())
    assert_bit_identical(graph, protocol, CD, [seed])


def test_cd_mis_table_beeping_model():
    # Same table, different collision model: the heard/silence mapping
    # comes from the model, not the program.
    graph = gnp_random_graph(40, 0.2, seed=4)
    protocol = CDMISProtocol(constants=ConstantsProfile.practical())
    assert_bit_identical(graph, protocol, BEEPING, [3, 11])


def test_beeping_mis_table_bit_identical():
    graph = gnp_random_graph(50, 0.15, seed=5)
    protocol = BeepingMISProtocol(constants=ConstantsProfile.practical())
    assert_bit_identical(graph, protocol, BEEPING, [0, 5, 9])


def test_naive_cd_luby_table_bit_identical():
    graph = gnp_random_graph(50, 0.15, seed=6)
    assert_bit_identical(graph, NaiveCDLubyProtocol(), CD, [0, 2, 13])


def test_naive_backoff_table_bit_identical():
    # Small graph: the simulated-backoff baseline runs thousands of
    # rounds per trial.
    graph = gnp_random_graph(30, 0.2, seed=7)
    protocol = NaiveBackoffMISProtocol(
        constants=ConstantsProfile.practical()
    )
    assert_bit_identical(graph, protocol, NO_CD, [1, 8])


def test_backoff_probe_table_bit_identical():
    # Exercises the info side channel ("heard") and the geometric-slot
    # draw positions on a hub-and-spokes topology.
    graph = star_graph(17)
    protocol = BackoffProbe(k=4, delta=16, senders=5)
    assert_bit_identical(graph, protocol, NO_CD, list(range(6)))


def test_table_matches_through_reference_engine():
    # The frozen seed engine agrees too: bit-identity is a property of
    # the table, not of one engine's scheduling.
    graph = gnp_random_graph(40, 0.15, seed=9)
    protocol = CDMISProtocol(constants=ConstantsProfile.practical())
    assert_bit_identical(
        graph, protocol, CD, [0, 4], engine=run_protocol_reference
    )


def test_instrumented_protocol_has_no_table():
    # The instrumented coroutine records per-phase diagnostics through
    # ctx.info; the table ABI deliberately does not model that, so the
    # builder declines and the scalar engine remains the only backend.
    protocol = CDMISProtocol(
        constants=ConstantsProfile.practical(), instrument=True
    )
    assert compile_table_for(protocol, 60, 10) is None
    assert as_table_protocol(protocol, 60, 10) is None


def test_has_table_builder_is_exact_class_keyed():
    assert has_table_builder(CDMISProtocol(ConstantsProfile.practical()))
    assert has_table_builder(NaiveCDLubyProtocol())

    class Custom(CDMISProtocol):
        pass

    # Subclasses may override run(); never serve the parent's table.
    assert not has_table_builder(Custom(ConstantsProfile.practical()))
