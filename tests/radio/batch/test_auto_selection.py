"""Engine auto-selection in ``run_trials`` (batch vs scalar dispatch).

The "auto" engine must batch exactly the batteries the vectorized
backend supports, fall back to the scalar path *silently* (correct
results, plus an ``engine.batch.fallback`` counter naming the reason
when telemetry is on), and never let the two backends' cache entries
alias (batch trials carry an engine-tagged key).
"""

import pytest

np = pytest.importorskip("numpy")

from repro.analysis.runner import TrialSummary, run_trials
from repro.constants import ConstantsProfile
from repro.core.cd_mis import CDMISProtocol
from repro.errors import ConfigurationError
from repro.exec.cache import ResultCache, trial_key
from repro.exec.executor import execution_defaults
from repro.exec.resilience import RetryPolicy
from repro.faults.plan import FaultPlan
from repro.graphs import gnp_random_graph
from repro.obs.registry import Registry, recording
from repro.baselines.beep_sender_cd_mis import SenderCDBeepingMISProtocol
from repro.radio.actions import Listen
from repro.radio.models import BEEPING_SENDER_CD, CD
from repro.radio.node import Decision, Protocol

GRAPH = gnp_random_graph(80, 0.12, seed=9)
PROTOCOL = CDMISProtocol(constants=ConstantsProfile.practical())
SEEDS = list(range(48))  # >= _MIN_AUTO_BATCH, so "auto" batches


class TablelessProtocol(Protocol):
    """A coroutine-only protocol: no registered table builder."""

    name = "tableless"

    def run(self, ctx):
        yield Listen()
        ctx.decide(Decision.IN_MIS if ctx.node == 0 else Decision.OUT_MIS)


def batch_counters(summary_fn):
    """Run ``summary_fn`` under a recording registry; return counters."""
    with recording(Registry()) as registry:
        summary = summary_fn()
    counters = {
        name: value
        for name, value in registry.snapshot().get("counters", {}).items()
        if name.startswith("engine.batch.")
    }
    return summary, counters


def test_auto_batches_qualifying_battery():
    summary, counters = batch_counters(
        lambda: run_trials(GRAPH, PROTOCOL, CD, SEEDS, cache=False)
    )
    assert counters.get("engine.batch.batches") == 1
    assert counters.get("engine.batch.trials") == len(SEEDS)
    assert "engine.batch.fallback" not in counters
    assert summary.trials == len(SEEDS)
    assert summary.failures == 0


def test_forced_scalar_never_batches():
    _, counters = batch_counters(
        lambda: run_trials(
            GRAPH, PROTOCOL, CD, SEEDS, cache=False, engine="scalar"
        )
    )
    assert counters == {}


@pytest.mark.parametrize(
    "kwargs, reason",
    [
        ({"seeds": list(range(4))}, "too-few-trials"),
        ({"keep_results": True}, "keep-results"),
        ({"faults": FaultPlan(max_wake_skew=4)}, "faults"),
        ({"policy": RetryPolicy(max_retries=1)}, "retry-policy"),
        ({"model": BEEPING_SENDER_CD}, "model"),
    ],
)
def test_auto_falls_back_silently_with_reason(kwargs, reason):
    kwargs = dict(kwargs)
    seeds = kwargs.pop("seeds", SEEDS)
    model = kwargs.pop("model", CD)
    protocol = (
        SenderCDBeepingMISProtocol(constants=ConstantsProfile.practical())
        if model is BEEPING_SENDER_CD
        else PROTOCOL
    )
    summary, counters = batch_counters(
        lambda: run_trials(
            GRAPH, protocol, model, seeds, cache=False, **kwargs
        )
    )
    assert counters.get("engine.batch.fallback") == 1
    assert counters.get(f"engine.batch.fallback.{reason}") == 1
    assert "engine.batch.batches" not in counters
    assert isinstance(summary, TrialSummary)
    assert summary.trials == len(seeds)


def test_auto_falls_back_on_tableless_protocol():
    _, counters = batch_counters(
        lambda: run_trials(GRAPH, TablelessProtocol(), CD, SEEDS, cache=False)
    )
    assert counters.get("engine.batch.fallback.no-table") == 1


def test_forced_batch_on_unbatchable_battery_raises():
    with pytest.raises(ConfigurationError, match="not batchable"):
        run_trials(
            GRAPH, TablelessProtocol(), CD, SEEDS, cache=False, engine="batch"
        )


def test_unknown_engine_name_raises():
    with pytest.raises(ConfigurationError, match="unknown engine"):
        run_trials(GRAPH, PROTOCOL, CD, SEEDS, cache=False, engine="turbo")


def test_engine_inherited_from_execution_defaults():
    with execution_defaults(engine="scalar"):
        _, counters = batch_counters(
            lambda: run_trials(GRAPH, PROTOCOL, CD, SEEDS, cache=False)
        )
    assert counters == {}


def test_summaries_expose_identical_statistics_fields():
    batch = run_trials(GRAPH, PROTOCOL, CD, SEEDS, cache=False, engine="batch")
    scalar = run_trials(
        GRAPH, PROTOCOL, CD, SEEDS[:8], cache=False, engine="scalar"
    )
    for summary in (batch, scalar):
        assert summary.protocol_name == PROTOCOL.name
        assert summary.model_name == CD.name
        assert summary.graph_name == GRAPH.name
        assert summary.results == []
        assert summary.quarantined == []
        summary.describe()  # full statistics surface renders
    for outcome in batch.outcomes + scalar.outcomes:
        assert isinstance(outcome.valid, bool)
        assert isinstance(outcome.mis_size, int)
        assert isinstance(outcome.rounds, int)
        assert isinstance(outcome.max_energy, int)
        assert isinstance(outcome.mean_energy, float)
        assert isinstance(outcome.failure_kinds, tuple)
    assert [o.seed for o in batch.outcomes] == SEEDS


def test_batch_cache_keys_are_engine_tagged(tmp_path):
    cache = ResultCache(tmp_path)
    first = run_trials(GRAPH, PROTOCOL, CD, SEEDS, cache=cache)
    writes = cache.stats.writes
    second = run_trials(GRAPH, PROTOCOL, CD, SEEDS, cache=cache)
    assert cache.stats.writes == writes  # fully served from cache
    assert first.outcomes == second.outcomes
    # Scalar runs of the same cell must not see the batch entries.
    scalar = run_trials(
        GRAPH, PROTOCOL, CD, SEEDS[:4], cache=cache, engine="scalar"
    )
    assert cache.stats.writes == writes + 4
    assert scalar.trials == 4


def test_trial_key_scalar_default_unchanged():
    base = dict(
        protocol=PROTOCOL,
        model_name="cd",
        graph_spec="graph:test",
        seed=1,
    )
    assert trial_key(**base) == trial_key(**base, engine="scalar")
    assert trial_key(**base) != trial_key(**base, engine="batch")
