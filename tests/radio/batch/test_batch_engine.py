"""Batch-engine validation: MIS invariants and scalar equivalence.

The batched backend uses a counter-based RNG, so its trials are *not*
bit-identical to scalar runs — the contract is weaker and checked here:

* every reported-valid trial satisfies the MIS definition (independence
  and domination re-derived from the graph, not trusted from the
  engine), and
* headline distributions (MIS size, rounds, max/mean energy) are
  statistically indistinguishable from scalar batteries of the same
  cell, via a hand-rolled two-sample Kolmogorov-Smirnov test with a
  generous critical value (seeded inputs keep this deterministic).
"""

import math

import pytest

np = pytest.importorskip("numpy")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.validation import validate_run
from repro.constants import ConstantsProfile
from repro.core.cd_mis import CDMISProtocol
from repro.errors import SimulationError
from repro.graphs import gnp_random_graph, star_graph
from repro.radio.batch.engine import run_batch
from repro.radio.engine import run_protocol
from repro.radio.models import CD


def ks_statistic(a, b):
    """Two-sample KS statistic: max CDF gap over the pooled support."""
    a = sorted(a)
    b = sorted(b)
    points = sorted(set(a) | set(b))
    gap = 0.0
    i = j = 0
    for x in points:
        while i < len(a) and a[i] <= x:
            i += 1
        while j < len(b) and b[j] <= x:
            j += 1
        gap = max(gap, abs(i / len(a) - j / len(b)))
    return gap


def assert_same_distribution(a, b, label, c=1.95):
    """Fail when the KS statistic exceeds c * sqrt((m+n)/(m*n)).

    ``c = 1.95`` corresponds to alpha ~ 0.001 — deliberately generous,
    since the seeded inputs make each comparison a one-shot test.
    """
    critical = c * math.sqrt((len(a) + len(b)) / (len(a) * len(b)))
    gap = ks_statistic(a, b)
    assert gap <= critical, f"{label}: KS {gap:.3f} > {critical:.3f}"


GRAPH = gnp_random_graph(100, 0.1, seed=5)
PROTOCOL = CDMISProtocol(constants=ConstantsProfile.practical())


def test_batch_mis_invariants_reverified_from_graph():
    result = run_batch(GRAPH, PROTOCOL, CD, list(range(64)))
    assert bool(result.valid.all())
    neighbor_sets = GRAPH.neighbor_sets
    for trial in range(64):
        mis = {v for v in range(GRAPH.num_nodes) if result.mis[trial, v]}
        assert result.mis_size[trial] == len(mis)
        for v in mis:
            assert not (neighbor_sets[v] & mis), "independence violated"
        for v in range(GRAPH.num_nodes):
            assert v in mis or (neighbor_sets[v] & mis), "domination violated"


def test_batch_distributions_match_scalar():
    trials = 80
    batch = run_batch(GRAPH, PROTOCOL, CD, list(range(trials)))
    scalar_mis, scalar_rounds, scalar_max_e, scalar_mean_e = [], [], [], []
    for seed in range(trials):
        run = run_protocol(GRAPH, PROTOCOL, CD, seed=seed)
        report = validate_run(run)
        assert report.valid
        scalar_mis.append(report.mis_size)
        scalar_rounds.append(run.rounds)
        scalar_max_e.append(run.max_energy)
        scalar_mean_e.append(run.mean_energy)
    assert_same_distribution(
        batch.mis_size.tolist(), scalar_mis, "mis_size"
    )
    assert_same_distribution(
        batch.rounds.tolist(), scalar_rounds, "rounds"
    )
    assert_same_distribution(
        batch.max_energy.tolist(), scalar_max_e, "max_energy"
    )
    assert_same_distribution(
        batch.mean_energy.tolist(), scalar_mean_e, "mean_energy"
    )


def test_batch_per_trial_graphs_stacked_csr_path():
    graphs = [gnp_random_graph(60, 0.12, seed=400 + i) for i in range(24)]
    result = run_batch(graphs, PROTOCOL, CD, list(range(24)))
    assert bool(result.valid.all())
    for trial, graph in enumerate(graphs):
        mis = {v for v in range(graph.num_nodes) if result.mis[trial, v]}
        for v in mis:
            assert not (graph.neighbor_set(v) & mis)
        for v in range(graph.num_nodes):
            assert v in mis or (graph.neighbor_set(v) & mis)


def test_batch_star_graph_single_winner_neighborhood():
    # On a star the hub and a leaf can never both join the MIS.
    star = star_graph(16)
    result = run_batch(star, PROTOCOL, CD, list(range(32)))
    assert bool(result.valid.all())
    hub_in = result.mis[:, 0]
    leaf_any = result.mis[:, 1:].any(axis=1)
    assert not bool((hub_in & leaf_any).any())


def test_batch_watchdog_raises_on_round_budget():
    with pytest.raises(SimulationError):
        run_batch(GRAPH, PROTOCOL, CD, list(range(8)), max_rounds=2)


@settings(max_examples=8, deadline=None)
@given(
    graph_seed=st.integers(min_value=0, max_value=10_000),
    n=st.integers(min_value=8, max_value=60),
    batch=st.integers(min_value=1, max_value=24),
)
def test_batch_mis_validity_property(graph_seed, n, batch):
    """Any sampled topology and batch size yields valid MIS outputs."""
    graph = gnp_random_graph(n, 0.15, seed=graph_seed)
    result = run_batch(graph, PROTOCOL, CD, list(range(batch)))
    assert result.mis.shape == (batch, n)
    assert bool(result.valid.all())
    for trial in range(batch):
        mis = {v for v in range(n) if result.mis[trial, v]}
        for v in mis:
            assert not (graph.neighbor_set(v) & mis)
        for v in range(n):
            assert v in mis or (graph.neighbor_set(v) & mis)
