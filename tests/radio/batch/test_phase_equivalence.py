"""Phase-based (sleep-set compressed) execution vs the flat batch path.

The phased kernel rebuilds a compressed residual graph as nodes go to
sleep; its contract is *exactness*, not approximation: transmitters are
always live, so live-live edges are never dropped and every collision
count matches the flat kernel's bit for bit.  This suite locks that
down (every :class:`BatchResult` field identical), re-checks MIS
validity against the graph itself on every Hypothesis example, and
keeps the phased path statistically tied to the scalar engine.

The degree-sampled sparsification cap is the one *approximation* knob;
its exactness boundary (``cap >= Delta`` is a no-op) is pinned here
too.
"""

import pytest

np = pytest.importorskip("numpy")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import ConstantsProfile
from repro.core.cd_mis import CDMISProtocol
from repro.baselines import NaiveBackoffMISProtocol
from repro.graphs import gnp_random_graph, star_graph, streaming_gnp_random_graph
from repro.radio.batch.engine import (
    DENSE_NODE_LIMIT,
    MAX_RANK_WIDTH,
    run_batch,
)
from repro.radio.engine import run_protocol
from repro.radio.models import CD

from .test_batch_engine import assert_same_distribution

PROTOCOL = CDMISProtocol(constants=ConstantsProfile.practical())


def assert_results_identical(a, b):
    """Every BatchResult field bit-identical."""
    assert a.seeds == b.seeds
    assert a.protocol_name == b.protocol_name
    assert a.model_name == b.model_name
    assert a.num_nodes == b.num_nodes
    for name in (
        "valid",
        "mis_size",
        "rounds",
        "max_energy",
        "mean_energy",
        "undecided",
        "independence",
        "domination",
        "mis",
    ):
        assert np.array_equal(getattr(a, name), getattr(b, name)), name


def assert_valid_mis_against_graph(result, graph):
    """Re-derive the MIS invariants from the graph, trusting nothing."""
    neighbor_sets = graph.neighbor_sets
    for trial in range(result.trials):
        assert bool(result.valid[trial]), result.failure_kinds(trial)
        mis = {v for v in range(graph.num_nodes) if result.mis[trial, v]}
        assert result.mis_size[trial] == len(mis)
        for v in mis:
            assert not (neighbor_sets[v] & mis), "independence violated"
        for v in range(graph.num_nodes):
            assert v in mis or (neighbor_sets[v] & mis), "domination violated"


# ----------------------------------------------------------------------
# Bit-identity: phased == non-phased
# ----------------------------------------------------------------------


@settings(max_examples=15, deadline=None)
@given(
    graph_seed=st.integers(min_value=0, max_value=2**32 - 1),
    n=st.integers(min_value=1, max_value=512),
    batch=st.integers(min_value=1, max_value=8),
)
def test_phased_identical_to_flat_and_valid(graph_seed, n, batch):
    graph = gnp_random_graph(n, min(1.0, 8.0 / max(1, n - 1)), seed=graph_seed)
    seeds = list(range(batch))
    flat = run_batch(graph, PROTOCOL, CD, seeds, phased=False)
    phased = run_batch(graph, PROTOCOL, CD, seeds, phased=True)
    assert_results_identical(phased, flat)
    assert_valid_mis_against_graph(phased, graph)


def test_phased_identical_on_per_trial_graphs():
    graphs = [gnp_random_graph(120, 0.05, seed=s) for s in (1, 2, 3, 4)]
    seeds = [10, 11, 12, 13]
    flat = run_batch(graphs, PROTOCOL, CD, seeds, phased=False)
    phased = run_batch(graphs, PROTOCOL, CD, seeds, phased=True)
    assert_results_identical(phased, flat)


def test_phased_identical_on_star_graph():
    # Maximal contention: one hub, every leaf competing through it.
    graph = star_graph(64)
    seeds = list(range(16))
    flat = run_batch(graph, PROTOCOL, CD, seeds, phased=False)
    phased = run_batch(graph, PROTOCOL, CD, seeds, phased=True)
    assert_results_identical(phased, flat)
    assert_valid_mis_against_graph(phased, graph)


def test_phased_identical_for_nocd_protocol():
    protocol = NaiveBackoffMISProtocol(constants=ConstantsProfile.practical())
    graph = gnp_random_graph(80, 0.08, seed=21)
    seeds = list(range(6))
    flat = run_batch(graph, protocol, CD, seeds, phased=False)
    phased = run_batch(graph, protocol, CD, seeds, phased=True)
    assert_results_identical(phased, flat)


def test_auto_phasing_engages_past_the_dense_limit():
    # Above DENSE_NODE_LIMIT the engine must pick the phased kernel on
    # its own and still agree with the explicit flat path.
    n = DENSE_NODE_LIMIT + 100
    graph = streaming_gnp_random_graph(n, 4.0 / (n - 1), seed=5)
    seeds = [0, 1]
    auto = run_batch(graph, PROTOCOL, CD, seeds)
    flat = run_batch(graph, PROTOCOL, CD, seeds, phased=False)
    assert_results_identical(auto, flat)
    assert_valid_mis_against_graph(auto, graph)


def test_wide_rank_phased_identity():
    # Past MAX_RANK_WIDTH the engine switches rank registers to the
    # stream-anchored representation; n here forces width > 62 while
    # staying small enough for the flat kernel to double-check.
    constants = ConstantsProfile.practical()
    n = 100_000
    assert constants.rank_bits(n) > MAX_RANK_WIDTH
    graph = streaming_gnp_random_graph(n, 4.0 / (n - 1), seed=8)
    seeds = [3]
    flat = run_batch(graph, PROTOCOL, CD, seeds, phased=False)
    phased = run_batch(graph, PROTOCOL, CD, seeds, phased=True)
    assert_results_identical(phased, flat)
    assert bool(phased.valid.all())


# ----------------------------------------------------------------------
# Scalar equivalence: the phased path stays on-distribution
# ----------------------------------------------------------------------


def test_phased_distributions_match_scalar():
    graph = gnp_random_graph(100, 0.1, seed=5)
    trials = 80
    phased = run_batch(graph, PROTOCOL, CD, list(range(trials)), phased=True)
    scalar = [
        run_protocol(graph, PROTOCOL, CD, seed=seed + 10_000)
        for seed in range(trials)
    ]
    assert bool(phased.valid.all())
    assert all(r.is_valid_mis() for r in scalar)
    assert_same_distribution(
        phased.mis_size.tolist(),
        [len(r.mis) for r in scalar],
        "mis_size",
    )
    assert_same_distribution(
        phased.rounds.tolist(), [r.rounds for r in scalar], "rounds"
    )
    assert_same_distribution(
        phased.max_energy.tolist(), [r.max_energy for r in scalar],
        "max_energy",
    )
    assert_same_distribution(
        phased.mean_energy.tolist(), [r.mean_energy for r in scalar],
        "mean_energy",
    )


# ----------------------------------------------------------------------
# Sparsification: exact at cap >= Delta, keyed off trial identity
# ----------------------------------------------------------------------


def test_sparsify_at_max_degree_is_a_noop():
    graph = gnp_random_graph(200, 0.08, seed=13)
    seeds = list(range(8))
    for phased in (False, True):
        exact = run_batch(graph, PROTOCOL, CD, seeds, phased=phased)
        capped = run_batch(
            graph, PROTOCOL, CD, seeds, phased=phased,
            sparsify=graph.max_degree(),
        )
        assert_results_identical(capped, exact)


def test_sparsify_below_max_degree_changes_counts_deterministically():
    graph = gnp_random_graph(200, 0.15, seed=17)
    seeds = list(range(8))
    once = run_batch(graph, PROTOCOL, CD, seeds, sparsify=4)
    again = run_batch(graph, PROTOCOL, CD, seeds, sparsify=4)
    assert_results_identical(once, again)  # pure function of identity
    # Composition independence: the same seed alone sees the same trial.
    alone = run_batch(graph, PROTOCOL, CD, [seeds[3]], sparsify=4)
    assert np.array_equal(alone.mis[0], once.mis[3])


def test_sparsify_rejects_nonpositive_cap():
    graph = gnp_random_graph(50, 0.1, seed=1)
    from repro.errors import ProtocolError

    with pytest.raises(ProtocolError):
        run_batch(graph, PROTOCOL, CD, [0], sparsify=0)
