"""Tests for RunResult / NodeStats aggregation."""

import pytest

from repro.graphs import path_graph
from repro.radio import Decision
from repro.radio.metrics import FrozenLedger, NodeStats, RunResult


def make_result(decisions, energies, rounds=10):
    graph = path_graph(len(decisions))
    stats = tuple(
        NodeStats(
            node=i,
            transmit_rounds=energy // 2,
            listen_rounds=energy - energy // 2,
            finish_round=rounds,
            decision=decision,
            energy_by_component={"main": energy},
        )
        for i, (decision, energy) in enumerate(zip(decisions, energies))
    )
    return RunResult(
        graph=graph,
        protocol_name="test",
        model_name="cd",
        seed=0,
        rounds=rounds,
        node_stats=stats,
        node_info=tuple({} for _ in decisions),
    )


class TestMISExtraction:
    def test_mis_and_undecided(self):
        result = make_result(
            [Decision.IN_MIS, Decision.OUT_MIS, Decision.UNDECIDED], [1, 1, 1]
        )
        assert result.mis == frozenset({0})
        assert result.undecided == frozenset({2})

    def test_valid_mis_on_path(self):
        result = make_result(
            [Decision.IN_MIS, Decision.OUT_MIS, Decision.IN_MIS], [1, 1, 1]
        )
        assert result.is_valid_mis()

    def test_undecided_invalidates(self):
        result = make_result(
            [Decision.IN_MIS, Decision.UNDECIDED, Decision.IN_MIS], [1, 1, 1]
        )
        assert not result.is_valid_mis()

    def test_adjacent_mis_invalidates(self):
        result = make_result(
            [Decision.IN_MIS, Decision.IN_MIS, Decision.OUT_MIS], [1, 1, 1]
        )
        assert not result.is_valid_mis()

    def test_decisions_map(self):
        result = make_result([Decision.IN_MIS, Decision.OUT_MIS], [1, 2])
        assert result.decisions() == {0: Decision.IN_MIS, 1: Decision.OUT_MIS}


class TestEnergyAggregation:
    def test_max_total_mean(self):
        result = make_result(
            [Decision.IN_MIS, Decision.OUT_MIS, Decision.OUT_MIS], [4, 10, 6]
        )
        assert result.max_energy == 10
        assert result.total_energy == 20
        assert result.mean_energy == pytest.approx(20 / 3)

    def test_empty_graph_result(self):
        result = make_result([], [])
        assert result.max_energy == 0
        assert result.mean_energy == 0.0

    def test_percentiles(self):
        result = make_result([Decision.IN_MIS] * 5, [1, 2, 3, 4, 100])
        assert result.energy_percentile(0) == 1
        assert result.energy_percentile(50) == 3
        assert result.energy_percentile(100) == 100

    def test_percentile_range_checked(self):
        result = make_result([Decision.IN_MIS], [1])
        with pytest.raises(ValueError):
            result.energy_percentile(101)

    def test_component_aggregation(self):
        result = make_result([Decision.IN_MIS, Decision.OUT_MIS], [3, 5])
        assert result.energy_by_component() == {"main": 8}
        assert result.max_energy_by_component() == {"main": 5}

    def test_awake_rounds_consistency(self):
        result = make_result([Decision.IN_MIS], [7])
        stats = result.node_stats[0]
        assert stats.awake_rounds == stats.transmit_rounds + stats.listen_rounds == 7


class TestSummary:
    def test_summary_mentions_verdict(self):
        valid = make_result([Decision.IN_MIS, Decision.OUT_MIS], [1, 1])
        assert "MIS-OK" in valid.summary()
        invalid = make_result([Decision.UNDECIDED, Decision.UNDECIDED], [1, 1])
        assert "INVALID" in invalid.summary()


class TestFrozenLedger:
    """Regression: NodeStats is frozen=True, so its energy ledger must be
    immutable and hashable too (a plain dict field silently allowed
    mutation and broke hash()).
    """

    def make_stats(self, ledger=None):
        return NodeStats(
            node=0,
            transmit_rounds=1,
            listen_rounds=2,
            finish_round=5,
            decision=Decision.IN_MIS,
            energy_by_component=ledger or {"competition": 2, "check": 1},
        )

    def test_ledger_is_coerced_to_frozen(self):
        stats = self.make_stats()
        assert isinstance(stats.energy_by_component, FrozenLedger)

    def test_mutation_raises(self):
        ledger = self.make_stats().energy_by_component
        with pytest.raises(TypeError):
            ledger["competition"] = 99
        with pytest.raises(TypeError):
            del ledger["check"]
        with pytest.raises(TypeError):
            ledger.update({"extra": 1})
        with pytest.raises(TypeError):
            ledger.pop("check")
        with pytest.raises(TypeError):
            ledger.clear()
        with pytest.raises(TypeError):
            ledger.setdefault("other", 0)

    def test_stats_are_hashable(self):
        a, b = self.make_stats(), self.make_stats()
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_ledger_equals_plain_dict(self):
        ledger = self.make_stats().energy_by_component
        assert ledger == {"competition": 2, "check": 1}
        assert dict(ledger) == {"competition": 2, "check": 1}

    def test_ledger_hash_matches_contents(self):
        one = FrozenLedger({"a": 1, "b": 2})
        two = FrozenLedger({"b": 2, "a": 1})
        assert hash(one) == hash(two)

    def test_ledger_json_round_trip(self):
        import json

        ledger = self.make_stats().energy_by_component
        assert json.loads(json.dumps(ledger)) == dict(ledger)
