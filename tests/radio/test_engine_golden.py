"""Golden-equivalence tests: the optimized engine vs the frozen seed engine.

PR 2 rewrote :func:`repro.radio.engine.run_protocol`'s hot path (scatter
collision resolution, bucketed round calendar, interned observations,
shape-specialized round loops).  The optimization contract is *bit
identity*: for every protocol, collision model, seed, trace setting, and
fault/wake schedule, the new engine must produce a
:class:`~repro.radio.metrics.RunResult` (and trace event stream) equal to
the pre-optimization engine, which is preserved verbatim as
:func:`repro.radio._engine_reference.run_protocol_reference`.

These tests are the enforcement.  If an engine change breaks one, the
change is wrong — the reference is the specification.
"""

import pytest

from repro.constants import ConstantsProfile
from repro.core import (
    BeepingMISProtocol,
    CDMISProtocol,
    LowDegreeMISProtocol,
    NoCDEnergyMISProtocol,
    UnknownDeltaMISProtocol,
)
from repro.graphs import gnp_random_graph
from repro.radio import BEEPING, BEEPING_SENDER_CD, CD, NO_CD, Listen, Protocol, Sleep, Transmit, run_protocol
from repro.radio._engine_reference import run_protocol_reference
from repro.radio.trace import TraceRecorder

FAST = ConstantsProfile.fast()

GRAPH_MEDIUM = gnp_random_graph(60, 0.15, seed=7)
GRAPH_SMALL = gnp_random_graph(40, 0.3, seed=11)
GRAPH_DENSE = gnp_random_graph(200, 0.1, seed=1)


def assert_bit_identical(graph, protocol, model, seed, **kwargs):
    """Run both engines, untraced and traced, and compare everything."""
    reference = run_protocol_reference(graph, protocol, model, seed=seed, **kwargs)
    optimized = run_protocol(graph, protocol, model, seed=seed, **kwargs)
    assert optimized == reference

    ref_trace, opt_trace = TraceRecorder(), TraceRecorder()
    reference_traced = run_protocol_reference(
        graph, protocol, model, seed=seed, trace=ref_trace, **kwargs
    )
    optimized_traced = run_protocol(
        graph, protocol, model, seed=seed, trace=opt_trace, **kwargs
    )
    assert optimized_traced == reference_traced
    assert opt_trace.events == ref_trace.events


@pytest.mark.parametrize("seed", [0, 1, 5])
@pytest.mark.parametrize(
    "graph, protocol_factory, model",
    [
        (GRAPH_MEDIUM, lambda: CDMISProtocol(constants=FAST), CD),
        (GRAPH_MEDIUM, lambda: CDMISProtocol(constants=FAST), BEEPING),
        (GRAPH_SMALL, lambda: BeepingMISProtocol(constants=FAST), BEEPING),
        (GRAPH_SMALL, lambda: NoCDEnergyMISProtocol(constants=FAST), NO_CD),
        (GRAPH_SMALL, lambda: LowDegreeMISProtocol(constants=FAST), NO_CD),
        (GRAPH_SMALL, lambda: UnknownDeltaMISProtocol(constants=FAST), NO_CD),
    ],
    ids=["cd-mis/cd", "cd-mis/beep", "beep-mis/beep", "nocd-mis/no-cd",
         "lowdeg/no-cd", "unknown-delta/no-cd"],
)
def test_protocols_bit_identical(graph, protocol_factory, model, seed):
    assert_bit_identical(graph, protocol_factory(), model, seed)


def test_sender_side_detection_bit_identical():
    """The sender-side beeping model exercises the generic round loop."""
    assert_bit_identical(
        GRAPH_SMALL,
        BeepingMISProtocol(constants=FAST),
        BEEPING_SENDER_CD,
        seed=1,
        check_model_compatibility=False,
    )


def test_crash_schedule_bit_identical():
    assert_bit_identical(
        GRAPH_MEDIUM,
        CDMISProtocol(constants=FAST),
        CD,
        seed=3,
        crash_schedule={0: 5, 7: 12, 20: 1},
    )


def test_wake_schedule_bit_identical():
    assert_bit_identical(
        GRAPH_MEDIUM,
        CDMISProtocol(constants=FAST),
        CD,
        seed=3,
        wake_schedule={node: node % 4 for node in GRAPH_MEDIUM.nodes},
    )


def test_crash_and_wake_combined_bit_identical():
    assert_bit_identical(
        GRAPH_MEDIUM,
        CDMISProtocol(constants=FAST),
        CD,
        seed=4,
        crash_schedule={1: 9},
        wake_schedule={node: (node * 3) % 5 for node in GRAPH_MEDIUM.nodes},
    )


# ----------------------------------------------------------------------
# Fault plans: the bit-identity contract covers faulty runs too.
# ----------------------------------------------------------------------

from repro.faults import CrashEvent, FaultPlan, JamWindow  # noqa: E402


@pytest.mark.parametrize(
    "plan",
    [
        FaultPlan(seed=3, drop_p=0.05),
        FaultPlan(seed=3, jams=(JamWindow(5, 15), JamWindow(30, 40, 0.4))),
        FaultPlan(seed=3, crashes={2: CrashEvent(10, 8), 7: 15}),
        FaultPlan(seed=3, crash_fraction=0.2, crash_round=12, crash_recovery=6),
        FaultPlan(seed=3, max_wake_skew=4),
        FaultPlan(
            seed=3,
            drop_p=0.02,
            jams=(JamWindow(8, 12),),
            crashes={1: [CrashEvent(6, 4), CrashEvent(25)]},
            crash_fraction=0.1,
            crash_round=20,
            max_wake_skew=2,
        ),
    ],
    ids=["drop", "jam", "crash-recovery", "fraction", "wake-skew", "kitchen-sink"],
)
@pytest.mark.parametrize("model", [CD, BEEPING], ids=lambda m: m.name)
def test_fault_plans_bit_identical(plan, model):
    # Generous budget: faults legitimately stretch runs past the
    # fault-free watchdog, and watchdog errors are not what is under
    # test here.
    assert_bit_identical(
        GRAPH_SMALL,
        CDMISProtocol(constants=FAST),
        model,
        seed=6,
        faults=plan,
        max_rounds=50_000,
        check_model_compatibility=False,
    )


def test_fault_plan_composes_with_legacy_schedules_bit_identical():
    assert_bit_identical(
        GRAPH_SMALL,
        CDMISProtocol(constants=FAST),
        CD,
        seed=2,
        faults=FaultPlan(seed=1, drop_p=0.03, crashes={4: CrashEvent(7, 5)}),
        crash_schedule={0: 5, 9: 12},
        wake_schedule={node: node % 3 for node in GRAPH_SMALL.nodes},
        max_rounds=50_000,
    )


def test_noop_fault_plan_bit_identical_to_none():
    protocol = CDMISProtocol(constants=FAST)
    baseline = run_protocol(GRAPH_SMALL, protocol, CD, seed=8)
    with_noop = run_protocol(GRAPH_SMALL, protocol, CD, seed=8, faults=FaultPlan())
    assert with_noop == baseline


@pytest.mark.parametrize("model", [CD, NO_CD, BEEPING], ids=lambda m: m.name)
def test_dense_traffic_faults_bit_identical(model):
    # Fixed-length scripts terminate under any channel, so this covers
    # the no-CD perturbation path (where jam reads as silence) without
    # depending on an MIS protocol converging under noise.
    plan = FaultPlan(
        seed=4,
        drop_p=0.1,
        jams=(JamWindow(3, 9, 0.5),),
        crashes={5: CrashEvent(4, 3), 11: 8},
    )
    assert_bit_identical(GRAPH_DENSE, DenseTraffic(rounds=20), model, 9, faults=plan)


class DenseTraffic(Protocol):
    """Every node alternates transmit/listen — drives the scatter path,
    including the heavy-round (numpy-accelerated, when available) branch."""

    name = "dense-traffic"
    compatible_models = ("cd", "no-cd", "beep")

    def __init__(self, rounds: int):
        self.rounds = rounds

    def run(self, ctx):
        for index in range(self.rounds):
            if (index + ctx.node) % 2:
                yield Transmit()
            else:
                yield Listen()


class SparseTraffic(Protocol):
    """Long sleeps between listens — drives the calendar fast-forward."""

    name = "sparse-traffic"
    compatible_models = ("cd", "no-cd", "beep")

    def __init__(self, beats: int):
        self.beats = beats

    def run(self, ctx):
        for _ in range(self.beats):
            yield Sleep(100_000)
            yield Listen()


@pytest.mark.parametrize("model", [CD, NO_CD, BEEPING], ids=lambda m: m.name)
@pytest.mark.parametrize("seed", [1, 9])
def test_dense_traffic_bit_identical(model, seed):
    assert_bit_identical(GRAPH_DENSE, DenseTraffic(rounds=20), model, seed)


def test_sparse_traffic_bit_identical():
    assert_bit_identical(
        gnp_random_graph(100, 0.1, seed=2), SparseTraffic(beats=5), CD, seed=2
    )
