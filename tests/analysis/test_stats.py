"""Tests for the statistics helpers."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import (
    geometric_mean,
    percentile,
    summarize,
    wilson_interval,
)
from repro.errors import ConfigurationError

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestSummarize:
    def test_basic(self):
        summary = summarize([1, 2, 3, 4, 5])
        assert summary.count == 5
        assert summary.mean == 3.0
        assert summary.minimum == 1.0
        assert summary.maximum == 5.0
        assert summary.median == 3.0
        assert summary.stdev == pytest.approx(math.sqrt(2.5))

    def test_single_value(self):
        summary = summarize([7.0])
        assert summary.stdev == 0.0
        assert summary.median == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize([])

    def test_str(self):
        assert "mean=" in str(summarize([1, 2]))

    @given(st.lists(finite_floats, min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_invariants(self, values):
        summary = summarize(values)
        assert summary.minimum <= summary.median <= summary.maximum
        assert summary.minimum <= summary.mean <= summary.maximum
        assert summary.stdev >= 0


class TestPercentile:
    def test_endpoints(self):
        values = [3, 1, 2]
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 3

    def test_interpolation(self):
        assert percentile([0, 10], 50) == 5.0
        assert percentile([0, 10, 20], 25) == 5.0

    def test_single_element(self):
        assert percentile([4], 75) == 4

    def test_range_validation(self):
        with pytest.raises(ConfigurationError):
            percentile([1], -1)
        with pytest.raises(ConfigurationError):
            percentile([], 50)

    @given(st.lists(finite_floats, min_size=1, max_size=30), st.floats(0, 100))
    @settings(max_examples=50, deadline=None)
    def test_within_sample_range(self, values, q):
        result = percentile(values, q)
        assert min(values) <= result <= max(values)


class TestWilson:
    def test_half_centered(self):
        low, high = wilson_interval(50, 100)
        assert low < 0.5 < high
        assert high - low < 0.25

    def test_extremes_clamped(self):
        low, high = wilson_interval(0, 20)
        assert low == 0.0
        low, high = wilson_interval(20, 20)
        assert high == 1.0

    def test_interval_narrows_with_trials(self):
        narrow = wilson_interval(500, 1000)
        wide = wilson_interval(5, 10)
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            wilson_interval(1, 0)
        with pytest.raises(ConfigurationError):
            wilson_interval(5, 3)
        with pytest.raises(ConfigurationError):
            wilson_interval(-1, 3)

    @given(st.integers(0, 50), st.integers(1, 50))
    @settings(max_examples=50, deadline=None)
    def test_contains_point_estimate(self, successes, extra):
        trials = successes + extra
        low, high = wilson_interval(successes, trials)
        assert low <= successes / trials <= high


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)

    def test_single(self):
        assert geometric_mean([5.0]) == pytest.approx(5.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ConfigurationError):
            geometric_mean([])


class TestWilsonBoundaries:
    """Boundary behaviour the claims subsystem's rate predicates rely on."""

    @given(st.integers(1, 200))
    @settings(max_examples=50, deadline=None)
    def test_zero_successes_low_is_exactly_zero(self, trials):
        low, high = wilson_interval(0, trials)
        assert low == 0.0
        assert 0.0 < high <= 1.0

    @given(st.integers(1, 200))
    @settings(max_examples=50, deadline=None)
    def test_all_successes_high_is_exactly_one(self, trials):
        low, high = wilson_interval(trials, trials)
        assert high == 1.0
        assert 0.0 <= low < 1.0

    @given(st.integers(0, 100), st.integers(1, 100))
    @settings(max_examples=50, deadline=None)
    def test_endpoints_stay_in_unit_interval(self, successes, extra):
        trials = successes + extra
        low, high = wilson_interval(successes, trials)
        assert 0.0 <= low <= high <= 1.0

    def test_zero_z_collapses_to_proportion(self):
        assert wilson_interval(3, 10, z=0.0) == (0.3, 0.3)


class TestPercentileEdges:
    @given(st.lists(finite_floats, min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_extreme_quantiles_are_exact_min_max(self, values):
        assert percentile(values, 0.0) == min(values)
        assert percentile(values, 100.0) == max(values)

    def test_duplicates_do_not_break_interpolation(self):
        assert percentile([5.0, 5.0, 5.0, 5.0], 37.0) == 5.0

    def test_unsorted_input_matches_sorted(self):
        shuffled = [9.0, 1.0, 5.0, 3.0, 7.0]
        assert percentile(shuffled, 60.0) == percentile(sorted(shuffled), 60.0)

    def test_above_range_rejected(self):
        with pytest.raises(ConfigurationError):
            percentile([1.0], 100.5)


class TestGeometricMeanProperties:
    @given(st.lists(st.floats(1e-3, 1e3), min_size=1, max_size=20),
           st.floats(1e-2, 1e2))
    @settings(max_examples=50, deadline=None)
    def test_scale_equivariance(self, values, scale):
        scaled = geometric_mean([scale * value for value in values])
        assert scaled == pytest.approx(scale * geometric_mean(values), rel=1e-9)

    def test_pairwise_matches_sqrt_product(self):
        assert geometric_mean([3.0, 12.0]) == pytest.approx(6.0)

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            geometric_mean([2.0, -1.0])
