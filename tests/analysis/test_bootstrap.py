"""Tests for the bootstrap confidence interval helper."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import bootstrap_ci, percentile
from repro.errors import ConfigurationError


class TestBootstrapCI:
    def test_contains_truth_for_symmetric_sample(self):
        low, high = bootstrap_ci(list(range(1, 101)), seed=1)
        assert low < 50.5 < high
        assert high - low < 15  # n=100 mean CI is tight

    def test_constant_sample_degenerate(self):
        assert bootstrap_ci([7.0] * 10) == (7.0, 7.0)

    def test_deterministic_given_seed(self):
        values = [1.0, 5.0, 9.0, 2.0, 8.0]
        assert bootstrap_ci(values, seed=3) == bootstrap_ci(values, seed=3)

    def test_custom_statistic(self):
        values = list(range(100))
        low, high = bootstrap_ci(
            values, statistic=lambda sample: percentile(sample, 90.0), seed=2
        )
        assert 75 <= low <= high <= 99

    def test_confidence_widens_interval(self):
        values = [float(v) for v in range(30)]
        narrow = bootstrap_ci(values, confidence=0.5, seed=4)
        wide = bootstrap_ci(values, confidence=0.99, seed=4)
        assert (wide[1] - wide[0]) >= (narrow[1] - narrow[0])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bootstrap_ci([])
        with pytest.raises(ConfigurationError):
            bootstrap_ci([1.0], confidence=1.5)
        with pytest.raises(ConfigurationError):
            bootstrap_ci([1.0], resamples=0)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=30),
           st.integers(0, 5))
    @settings(max_examples=20, deadline=None)
    def test_interval_within_sample_range_for_mean(self, values, seed):
        low, high = bootstrap_ci(values, resamples=200, seed=seed)
        # Resample means can drift a few ulp past the sample range.
        slack = 1e-9 * max(1.0, max(abs(v) for v in values))
        assert min(values) - slack <= low <= high <= max(values) + slack


class TestBootstrapEndpointInterpolation:
    """Regression tests for the interpolated percentile endpoints.

    ``bootstrap_ci`` used to select endpoints by truncating index
    (``estimates[int(alpha * (resamples - 1))]``), which rounds both
    endpoints toward the median and biases intervals narrow at low
    resample counts.  The pinned values below change if anyone
    reintroduces index truncation.
    """

    VALUES = [1.0, 2.0, 4.0, 8.0, 16.0]

    def test_pinned_values(self):
        low, high = bootstrap_ci(self.VALUES, resamples=20, seed=7)
        assert low == pytest.approx(3.77)
        assert high == pytest.approx(10.735)
        low50, high50 = bootstrap_ci(
            self.VALUES, resamples=20, seed=7, confidence=0.5
        )
        assert low50 == pytest.approx(5.6)
        assert high50 == pytest.approx(7.85)

    def test_wider_than_truncating_index_selection(self):
        # Replay the exact resample stream, then compare against the
        # old truncating-index endpoints: the interpolated interval
        # must reach at least as far up as them.
        import random

        rng = random.Random(7)
        count = len(self.VALUES)
        estimates = sorted(
            sum(self.VALUES[rng.randrange(count)] for _ in range(count)) / count
            for _ in range(20)
        )
        alpha = 0.025
        old_low = estimates[int(alpha * 19)]
        old_high = estimates[int((1.0 - alpha) * 19)]
        low, high = bootstrap_ci(self.VALUES, resamples=20, seed=7)
        assert low == pytest.approx(percentile(estimates, 2.5))
        assert high == pytest.approx(percentile(estimates, 97.5))
        # int() truncation rounds the upper index down, so the old code
        # systematically pulled the upper endpoint toward the median.
        assert high > old_high
        assert (high - low) > (old_high - old_low)

    @given(st.integers(0, 10))
    @settings(max_examples=10, deadline=None)
    def test_endpoints_bracket_narrower_intervals(self, seed):
        # Endpoints need not be members of the resample distribution
        # (interpolation), but must bracket its median.
        low, high = bootstrap_ci(self.VALUES, resamples=30, seed=seed)
        mid = bootstrap_ci(
            self.VALUES, resamples=30, seed=seed, confidence=0.01
        )
        assert low <= mid[0] <= mid[1] <= high
