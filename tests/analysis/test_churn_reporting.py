"""Churn degradation metrics through the analysis layer: outcome cache
records, summary rendering, validation against the final graph, and the
``faults.churn.*`` telemetry counters."""

from repro.analysis.runner import (
    TrialOutcome,
    TrialSummary,
    _outcome_from_record,
    _outcome_to_record,
    run_trials,
)
from repro.analysis.validation import validate_run
from repro.constants import ConstantsProfile
from repro.core import CDMISProtocol
from repro.faults import ChurnPlan, FaultPlan
from repro.graphs import Graph, gnp_random_graph
from repro.obs.registry import Registry, recording
from repro.radio import CD, run_protocol

FAST = ConstantsProfile.fast()


def outcome(**overrides):
    base = dict(
        seed=0,
        valid=True,
        mis_size=4,
        rounds=20,
        max_energy=6,
        mean_energy=3.5,
        failure_kinds=(),
    )
    base.update(overrides)
    return TrialOutcome(**base)


class TestOutcomeRecords:
    def test_round_trip_preserves_churn_fields(self):
        original = outcome(
            repair_rounds=7,
            repair_energy=11,
            mis_violation_window=9,
            time_to_stabilize=5,
        )
        assert _outcome_from_record(_outcome_to_record(original)) == original

    def test_none_time_to_stabilize_survives_json(self):
        import json

        original = outcome(time_to_stabilize=None)
        record = json.loads(json.dumps(_outcome_to_record(original)))
        assert record["time_to_stabilize"] is None
        assert _outcome_from_record(record).time_to_stabilize is None

    def test_pre_churn_records_still_load(self):
        # Cache entries written before the churn fields existed decode
        # with zero defaults instead of KeyError.
        record = _outcome_to_record(outcome())
        for key in (
            "repair_rounds",
            "repair_energy",
            "mis_violation_window",
            "time_to_stabilize",
        ):
            del record[key]
        decoded = _outcome_from_record(record)
        assert decoded == outcome()


class TestSummaryRendering:
    def summary(self, outcomes):
        return TrialSummary(
            protocol_name="cd-mis",
            model_name="cd",
            graph_name="gnp",
            outcomes=outcomes,
        )

    def test_never_restabilized_renders_em_dash(self):
        report = self.summary(
            [outcome(time_to_stabilize=None), outcome(seed=1, time_to_stabilize=12)]
        ).describe()
        assert "stabilize   —, 12" in report

    def test_stable_runs_omit_stabilize_line(self):
        report = self.summary([outcome(), outcome(seed=1)]).describe()
        assert "stabilize" not in report
        assert "churn" not in report

    def test_churn_line_sums_repair_and_violation(self):
        report = self.summary(
            [
                outcome(repair_rounds=4, mis_violation_window=6),
                outcome(seed=1, repair_rounds=1, mis_violation_window=2),
            ]
        ).describe()
        assert "churn       repair-rounds 5, violation-window 8" in report


class TestValidation:
    def test_validate_run_scores_against_final_graph(self):
        # Departed MIS node: the static graph would call its orphaned
        # neighbors undominated unless validation follows the final
        # topology and exempts the leaver.
        graph = Graph(3, [(0, 1), (1, 2)], name="path")
        plan = FaultPlan(seed=4, churn=ChurnPlan(leaves=((1, 50),)))
        result = run_protocol(
            graph, CDMISProtocol(constants=FAST), CD, seed=4, faults=plan
        )
        report = validate_run(result)
        assert report.valid, report.failure_kinds


class TestChurnTelemetry:
    def test_run_trials_publishes_churn_counters(self):
        plan = FaultPlan(seed=1, churn=ChurnPlan(edge_p=1.0, start=30, stop=32))
        with recording(Registry()) as registry:
            summary = run_trials(
                gnp_random_graph(12, 0.25, seed=1),
                CDMISProtocol(constants=FAST),
                CD,
                seeds=[0, 1],
                cache=False,
                faults=plan,
                jobs=1,
            )
        assert summary.trials == 2
        counters = registry.counter_values()
        events = {
            name: value
            for name, value in counters.items()
            if name.startswith("faults.churn.events.")
        }
        assert sum(events.values()) == 2 * 2  # two toggles per trial
        assert "faults.churn.repair_rounds" in counters
        assert "faults.churn.violation_window" in counters

    def test_static_battery_publishes_nothing(self):
        with recording(Registry()) as registry:
            run_trials(
                gnp_random_graph(12, 0.25, seed=1),
                CDMISProtocol(constants=FAST),
                CD,
                seeds=[0],
                cache=False,
                jobs=1,
            )
        assert not any(
            name.startswith("faults.churn.")
            for name in registry.counter_values()
        )
