"""Parallel-vs-sequential equivalence, caching, and seed-decoupling tests
for :func:`repro.analysis.runner.run_trials`."""

import pytest

from repro.analysis.runner import run_trials
from repro.analysis.validation import validate_run
from repro.core import CDMISProtocol
from repro.constants import ConstantsProfile
from repro.exec.cache import ResultCache
from repro.exec.executor import execution_defaults
from repro.exec.seeds import graph_seed, protocol_seed
from repro.graphs import gnp_random_graph, path_graph
from repro.radio import CD
from repro.radio.engine import run_protocol


def factory(seed):
    return gnp_random_graph(24, 0.2, seed=seed)


class TestParallelEquivalence:
    def test_jobs4_identical_to_sequential(self, fast_constants):
        protocol = CDMISProtocol(constants=fast_constants)
        sequential = run_trials(factory, protocol, CD, range(8), jobs=1)
        parallel = run_trials(factory, protocol, CD, range(8), jobs=4)
        assert parallel.outcomes == sequential.outcomes
        assert parallel.graph_name == sequential.graph_name

    def test_fixed_graph_parallel(self, fast_constants):
        protocol = CDMISProtocol(constants=fast_constants)
        sequential = run_trials(path_graph(10), protocol, CD, range(6), jobs=1)
        parallel = run_trials(path_graph(10), protocol, CD, range(6), jobs=3)
        assert parallel.outcomes == sequential.outcomes

    def test_jobs_from_execution_defaults(self, fast_constants):
        protocol = CDMISProtocol(constants=fast_constants)
        baseline = run_trials(factory, protocol, CD, range(4))
        with execution_defaults(jobs=4):
            parallel = run_trials(factory, protocol, CD, range(4))
        assert parallel.outcomes == baseline.outcomes


class TestCaching:
    def test_second_run_is_all_hits(self, fast_constants, tmp_path):
        protocol = CDMISProtocol(constants=fast_constants)
        cache = ResultCache(tmp_path / "cache")
        first = run_trials(
            factory, protocol, CD, range(6), cache=cache, graph_spec="gnp/n=24"
        )
        assert cache.stats.hits == 0 and cache.stats.writes == 6
        second = run_trials(
            factory, protocol, CD, range(6), cache=cache, graph_spec="gnp/n=24"
        )
        assert cache.stats.hits == 6
        assert second.outcomes == first.outcomes

    def test_cached_outcomes_identical_across_processes(
        self, fast_constants, tmp_path
    ):
        protocol = CDMISProtocol(constants=fast_constants)
        root = tmp_path / "cache"
        first = run_trials(
            factory, protocol, CD, range(6), jobs=4,
            cache=ResultCache(root), graph_spec="gnp/n=24",
        )
        fresh = ResultCache(root)
        second = run_trials(
            factory, protocol, CD, range(6), jobs=1,
            cache=fresh, graph_spec="gnp/n=24",
        )
        assert fresh.stats.hits == 6 and fresh.stats.misses == 0
        assert second.outcomes == first.outcomes

    def test_changed_constants_profile_misses(self, fast_constants, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_trials(
            factory, CDMISProtocol(constants=fast_constants), CD, range(4),
            cache=cache, graph_spec="gnp/n=24",
        )
        other = CDMISProtocol(constants=ConstantsProfile.practical())
        run_trials(factory, other, CD, range(4), cache=cache, graph_spec="gnp/n=24")
        assert cache.stats.hits == 0
        assert cache.stats.writes == 8

    def test_fixed_graph_cached_without_spec(self, fast_constants, tmp_path):
        protocol = CDMISProtocol(constants=fast_constants)
        cache = ResultCache(tmp_path / "cache")
        run_trials(path_graph(10), protocol, CD, range(4), cache=cache)
        run_trials(path_graph(10), protocol, CD, range(4), cache=cache)
        assert cache.stats.hits == 4

    def test_factory_without_spec_skips_cache(self, fast_constants, tmp_path):
        protocol = CDMISProtocol(constants=fast_constants)
        cache = ResultCache(tmp_path / "cache")
        run_trials(factory, protocol, CD, range(4), cache=cache)
        assert cache.stats.lookups == 0 and cache.stats.writes == 0

    def test_progress_reports_hits_and_eta(self, fast_constants, tmp_path):
        protocol = CDMISProtocol(constants=fast_constants)
        cache = ResultCache(tmp_path / "cache")
        run_trials(factory, protocol, CD, range(4), cache=cache,
                   graph_spec="gnp/n=24")
        events = []
        run_trials(factory, protocol, CD, range(4), cache=cache,
                   graph_spec="gnp/n=24", progress=events.append)
        assert len(events) == 1  # everything served from cache
        assert events[0].done == events[0].total == events[0].cache_hits == 4
        assert events[0].eta_s == 0.0


class TestSeedDecoupling:
    def test_factory_seed_differs_from_protocol_seed(self, fast_constants):
        seen = []

        def spy_factory(seed):
            seen.append(seed)
            return gnp_random_graph(16, 0.2, seed=seed)

        run_trials(
            spy_factory, CDMISProtocol(constants=fast_constants), CD, [5]
        )
        # One build for the summary's graph name + one for the trial.
        assert all(seed == graph_seed(5) for seed in seen)
        assert graph_seed(5) != 5

    def test_coupled_flag_restores_legacy_behavior(self, fast_constants):
        protocol = CDMISProtocol(constants=fast_constants)
        summary = run_trials(
            factory, protocol, CD, range(4), coupled_seeds=True
        )
        for seed, outcome in zip(range(4), summary.outcomes):
            result = run_protocol(factory(seed), protocol, CD, seed=seed)
            report = validate_run(result)
            assert outcome.rounds == result.rounds
            assert outcome.max_energy == result.max_energy
            assert outcome.valid == report.valid

    def test_decoupled_uses_derived_protocol_seed(self, fast_constants):
        protocol = CDMISProtocol(constants=fast_constants)
        summary = run_trials(factory, protocol, CD, [9])
        result = run_protocol(
            factory(graph_seed(9)), protocol, CD, seed=protocol_seed(9)
        )
        outcome = summary.outcomes[0]
        assert outcome.rounds == result.rounds
        assert outcome.max_energy == result.max_energy

    def test_fixed_graph_keeps_master_seed(self, fast_constants):
        protocol = CDMISProtocol(constants=fast_constants)
        summary = run_trials(path_graph(10), protocol, CD, [3])
        result = run_protocol(path_graph(10), protocol, CD, seed=3)
        assert summary.outcomes[0].rounds == result.rounds
        assert summary.outcomes[0].max_energy == result.max_energy


class TestDescribeMeanEnergy:
    def test_mean_energy_line_present(self, fast_constants):
        summary = run_trials(
            path_graph(8), CDMISProtocol(constants=fast_constants), CD,
            seeds=range(3),
        )
        text = summary.describe()
        assert "max-energy" in text and "mean-energy" in text
        mean_line = next(
            line for line in text.splitlines() if "mean-energy" in line
        )
        assert f"mean={summary.mean_energy_summary().mean:.2f}" in mean_line
