"""Tests for the shared workload catalog."""

import pytest

from repro.analysis.workloads import (
    WORKLOADS,
    build_workload,
    get_workload,
    workload_names,
)
from repro.errors import ConfigurationError


class TestCatalog:
    def test_names_sorted_and_nonempty(self):
        names = workload_names()
        assert names == sorted(names)
        assert "gnp" in names and "hard" in names

    def test_every_workload_builds(self):
        for name in workload_names():
            graph = build_workload(name, 24, seed=1)
            assert graph.num_nodes >= 4, name

    def test_unknown_raises_with_choices(self):
        with pytest.raises(ConfigurationError, match="choose from"):
            get_workload("nonexistent")

    def test_randomized_flag_honest(self):
        for name, spec in WORKLOADS.items():
            a = spec.build(24, 1)
            b = spec.build(24, 2)
            if not spec.randomized:
                assert a == b, f"{name} claims deterministic but differs by seed"

    def test_randomized_families_vary(self):
        # At a size where variation is overwhelming.
        for name in ("gnp", "udg", "tree", "bounded", "planted"):
            spec = WORKLOADS[name]
            assert spec.build(64, 1) != spec.build(64, 2), name

    def test_seed_determinism(self):
        for name in workload_names():
            spec = WORKLOADS[name]
            assert spec.build(24, 7) == spec.build(24, 7), name

    def test_structural_constraints_respected(self):
        assert build_workload("hard", 30, 0).num_nodes % 4 == 0
        hypercube = build_workload("hypercube", 20, 0)
        assert hypercube.num_nodes >= 20
        assert (hypercube.num_nodes & (hypercube.num_nodes - 1)) == 0

    def test_descriptions_present(self):
        assert all(spec.description for spec in WORKLOADS.values())
