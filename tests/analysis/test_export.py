"""Tests for CSV/JSON export of experiment outputs."""

import csv
import io
import json

from repro.analysis import run_trials, run_size_sweep
from repro.analysis.export import (
    run_result_to_dict,
    save_text,
    sweep_to_csv,
    sweep_to_json,
    sweep_to_rows,
    trials_to_csv,
    trials_to_rows,
)
from repro.core import CDMISProtocol
from repro.graphs import gnp_random_graph, path_graph
from repro.radio import CD, run_protocol


def make_sweep(fast_constants):
    return run_size_sweep(
        (16, 32),
        lambda n, seed: gnp_random_graph(n, 0.2, seed=seed),
        lambda n: CDMISProtocol(constants=fast_constants),
        CD,
        trials=2,
    )


class TestSweepExport:
    def test_rows(self, fast_constants):
        rows = sweep_to_rows(make_sweep(fast_constants))
        assert len(rows) == 2
        assert rows[0]["n"] == 16
        assert rows[0]["protocol"] == "cd-mis"
        assert 0.0 <= rows[0]["failure_rate"] <= 1.0

    def test_csv_parses_back(self, fast_constants):
        text = sweep_to_csv(make_sweep(fast_constants))
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert len(parsed) == 2
        assert parsed[1]["n"] == "32"

    def test_json_parses_back(self, fast_constants):
        data = json.loads(sweep_to_json(make_sweep(fast_constants)))
        assert [row["n"] for row in data] == [16, 32]


class TestTrialsExport:
    def test_rows_and_csv(self, fast_constants):
        summary = run_trials(
            path_graph(8), CDMISProtocol(constants=fast_constants), CD, seeds=range(3)
        )
        rows = trials_to_rows(summary)
        assert len(rows) == 3
        assert all(row["valid"] for row in rows)
        parsed = list(csv.DictReader(io.StringIO(trials_to_csv(summary))))
        assert len(parsed) == 3
        assert parsed[0]["graph"] == "path(n=8)"


class TestRunResultExport:
    def test_dict_is_json_serializable(self, fast_constants):
        result = run_protocol(
            path_graph(8), CDMISProtocol(constants=fast_constants), CD, seed=1
        )
        data = run_result_to_dict(result)
        text = json.dumps(data)
        assert json.loads(text)["valid"] is True
        assert data["n"] == 8
        assert isinstance(data["energy_by_component"], dict)


class TestSaveText:
    def test_creates_parents(self, tmp_path):
        target = tmp_path / "deep" / "dir" / "out.csv"
        save_text("a,b\n1,2\n", target)
        assert target.read_text().startswith("a,b")
