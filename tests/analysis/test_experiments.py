"""Integration tests for the experiment harnesses (quick-scale)."""

import pytest

from repro.analysis.experiments import (
    get_experiment,
    run_backoff_experiment,
    run_correctness_battery,
    run_delta_sweep,
    run_energy_breakdown,
    run_headline_table,
    run_luby_phase_properties,
    run_residual_shrinkage,
    run_scaling_comparison,
)
from repro.analysis.experiments.registry import EXPERIMENTS
from repro.analysis.experiments.scaling import (
    cd_protocol_suite,
    default_graph_factory,
    nocd_protocol_suite,
)
from repro.constants import ConstantsProfile
from repro.graphs import gnp_random_graph
from repro.radio import CD, NO_CD


@pytest.fixture(scope="module")
def constants():
    return ConstantsProfile.fast()


@pytest.fixture(scope="module")
def tiny_graphs():
    return [gnp_random_graph(32, 0.15, seed=s) for s in (1, 2)]


class TestRegistry:
    def test_all_paper_experiments_registered(self):
        assert {f"E{i}" for i in range(1, 13)} <= set(EXPERIMENTS)
        assert set(EXPERIMENTS) == {
            spec.experiment_id for spec in EXPERIMENTS.values()
        }

    def test_extension_experiments_registered(self):
        assert {"A1", "A2", "A3", "A7"} <= set(EXPERIMENTS)

    def test_quick_a_experiments_render(self):
        for experiment_id in ("A1", "A3", "A7"):
            output = get_experiment(experiment_id).run()
            assert experiment_id in output

    def test_lookup_case_insensitive(self):
        assert get_experiment("e6").experiment_id == "E6"

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_experiment("E99")


class TestHeadline:
    def test_report(self, constants):
        report = run_headline_table(
            n=32, trials=2, constants=constants, include_naive_nocd=False
        )
        names = [row.protocol for row in report.rows]
        assert "cd-mis" in names and "nocd-energy-mis" in names
        table = report.to_table()
        assert "paper energy" in table

    def test_cd_beats_naive_energy(self, constants):
        report = run_headline_table(
            n=64, trials=3, constants=constants, include_naive_nocd=False
        )
        by_name = {row.protocol: row for row in report.rows}
        assert (
            by_name["cd-mis"].max_energy_mean
            < by_name["naive-cd-luby"].max_energy_mean
        )


class TestScaling:
    def test_cd_suite(self, constants):
        report = run_scaling_comparison(
            (16, 32, 64), cd_protocol_suite(constants), CD, trials=3
        )
        assert set(report.sweeps) == {"cd-mis", "naive-cd-luby"}
        table = report.metric_table("max_energy_mean", "energy")
        assert "cd-mis" in table
        fits = report.fits_table()
        assert "fit exponent" in fits

    def test_ratio_series_grows(self, constants):
        report = run_scaling_comparison(
            (32, 256), cd_protocol_suite(constants), CD, trials=4
        )
        ratios = report.ratio_series("naive-cd-luby", "cd-mis")
        assert ratios[-1] > ratios[0]  # ~log n growth

    def test_nocd_suite_smoke(self, constants):
        suite = nocd_protocol_suite(constants, include_naive=False)
        report = run_scaling_comparison((16, 32), suite, NO_CD, trials=2)
        assert len(report.sweeps) == 2

    def test_default_graph_factory_keeps_degree(self):
        graph = default_graph_factory(256, 1)
        # Expected average degree ~8; allow wide slack.
        average = 2 * graph.num_edges / graph.num_nodes
        assert 4 <= average <= 13


class TestCorrectnessBattery:
    def test_battery(self, constants):
        report = run_correctness_battery(n=24, trials=4, constants=constants)
        assert report.cells
        assert report.worst_rate <= 0.5
        assert "E7" in report.to_table()

    def test_kind_counts_sum(self, constants):
        report = run_correctness_battery(n=16, trials=3, constants=constants)
        for cell in report.cells:
            assert sum(cell.kind_counts.values()) >= cell.failures * 0 # kinds may overlap


class TestResidual:
    def test_shrinkage_measured(self, constants, tiny_graphs):
        report = run_residual_shrinkage(
            tiny_graphs, seeds=range(2), constants=constants
        )
        assert report.mean_ratio("cd-mis") < 0.8
        assert report.mean_ratio("luby-ideal") < 0.8
        nocd_ratio = report.mean_ratio("nocd-energy-mis")
        assert 0 < nocd_ratio < 1.0
        assert "E8" in report.to_table()

    def test_series_start_at_full_edge_count(self, constants, tiny_graphs):
        report = run_residual_shrinkage(
            tiny_graphs[:1], seeds=[0], constants=constants, include_nocd=False
        )
        for series in report.series:
            assert series.edges[0] == tiny_graphs[0].num_edges


class TestBackoffProbe:
    def test_report(self):
        report = run_backoff_experiment(
            delta=8, k_values=(1, 4), sender_counts=(1, 8), trials=30
        )
        assert len(report.points) == 4
        for point in report.points:
            assert point.heard_rate >= point.lemma9_bound - 0.25
            assert point.sender_energy == point.k
        assert "E9" in report.to_table()

    def test_receiver_energy_exceeds_sender(self):
        report = run_backoff_experiment(
            delta=32, k_values=(8,), sender_counts=(32,), trials=20
        )
        point = report.points[0]
        assert point.receiver_energy > point.sender_energy


class TestEnergyBreakdown:
    def test_components_covered(self, constants, tiny_graphs):
        report = run_energy_breakdown(tiny_graphs, seeds=[0], constants=constants)
        components = {row.component for row in report.rows}
        assert "competition-listen" in components
        assert "shallow-check" in components
        assert abs(sum(row.share_of_total for row in report.rows) - 1.0) < 1e-9
        assert "E10" in report.to_table()


class TestDeltaSweep:
    def test_rounds_grow_with_delta(self, constants):
        report = run_delta_sweep(
            n=32, deltas=(4, 16), trials=2, constants=constants
        )
        rounds = report.series("nocd-energy-mis", "rounds_mean")
        assert rounds[1] > rounds[0]
        assert report.deltas("nocd-energy-mis") == [4, 16]
        assert "E11" in report.to_table()


class TestLubyPhaseProps:
    def test_counts(self, constants, tiny_graphs):
        report = run_luby_phase_properties(
            tiny_graphs, seeds=[0], constants=constants
        )
        counts = report.counts
        assert counts.phases > 0
        assert counts.participants > 0
        assert counts.local_maxima > 0
        assert counts.max_committed_degree <= report.kappa_log_n
        assert "E12" in report.to_table()

    def test_mute_ablation_improves_lemma14(self, constants, tiny_graphs):
        plain = run_luby_phase_properties(
            tiny_graphs, seeds=[0, 1], constants=constants
        )
        muted = run_luby_phase_properties(
            tiny_graphs, seeds=[0, 1], constants=constants, mute_committed_on_hear=True
        )
        rate = lambda counts: (  # noqa: E731
            counts.local_maxima_that_won / counts.local_maxima
        )
        assert rate(muted.counts) >= rate(plain.counts)
