"""Mutation tests: every way of corrupting a valid MIS must be caught.

Property-based adversarial check on the validators: start from a valid
MIS (greedy), apply a random corruption, and assert the validation
report flags exactly the right violation class.
"""

import random

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.validation import validate_mis
from repro.graphs import gnp_random_graph, greedy_mis


graph_strategy = st.tuples(
    st.integers(4, 40), st.integers(0, 50)
).map(lambda t: gnp_random_graph(t[0], 0.25, seed=t[1]))


class TestMutationDetection:
    @given(graph_strategy, st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_valid_mis_passes(self, graph, seed):
        mis = greedy_mis(graph, rng=random.Random(seed))
        report = validate_mis(graph, mis)
        assert report.valid
        assert report.mis_size == len(mis)

    @given(graph_strategy, st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_adding_a_neighbor_breaks_independence(self, graph, seed):
        rng = random.Random(seed)
        mis = greedy_mis(graph, rng=rng)
        # Find a node outside the MIS adjacent to it (exists unless the
        # MIS is the whole node set, i.e. the graph is edgeless).
        candidates = [
            node
            for node in graph.nodes
            if node not in mis and graph.neighbor_set(node) & mis
        ]
        assume(candidates)
        corrupted = set(mis) | {rng.choice(candidates)}
        report = validate_mis(graph, corrupted)
        assert not report.valid
        assert report.independence_violations

    @given(graph_strategy, st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_removing_a_member_breaks_domination(self, graph, seed):
        rng = random.Random(seed)
        mis = sorted(greedy_mis(graph, rng=rng))
        victim = rng.choice(mis)
        corrupted = set(mis) - {victim}
        report = validate_mis(graph, corrupted)
        # The removed node is no longer dominated (its neighbors are all
        # outside the MIS, since it was a member of an independent set).
        assert not report.valid
        assert victim in report.domination_violations

    @given(graph_strategy, st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_undecided_nodes_always_flagged(self, graph, seed):
        rng = random.Random(seed)
        mis = greedy_mis(graph, rng=rng)
        undecided_node = rng.randrange(graph.num_nodes)
        report = validate_mis(graph, mis, undecided=[undecided_node])
        assert not report.valid
        assert "undecided" in report.failure_kinds

    @given(graph_strategy, st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_empty_set_caught_unless_graph_empty(self, graph, seed):
        report = validate_mis(graph, set())
        if graph.num_nodes:
            assert not report.valid
            assert len(report.domination_violations) == graph.num_nodes
