"""Tests for the declarative campaign runner."""

import json

import pytest

from repro.analysis.campaign import (
    CampaignSpec,
    load_campaign,
    run_campaign,
)
from repro.errors import ConfigurationError


def small_spec(**overrides):
    data = {
        "name": "test-campaign",
        "protocols": ["cd-mis"],
        "workloads": ["gnp", "path"],
        "sizes": [16, 24],
        "trials": 2,
        "profile": "fast",
        "seed": 1,
    }
    data.update(overrides)
    return CampaignSpec.from_dict(data)


class TestSpecValidation:
    def test_valid(self):
        spec = small_spec()
        assert spec.name == "test-campaign"
        assert spec.sizes == (16, 24)

    def test_missing_key(self):
        with pytest.raises(ConfigurationError, match="missing required key"):
            CampaignSpec.from_dict({"name": "x", "protocols": ["cd-mis"]})

    def test_empty_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            small_spec(protocols=[])
        with pytest.raises(ConfigurationError):
            small_spec(sizes=[])

    def test_bad_profile(self):
        with pytest.raises(ConfigurationError):
            small_spec(profile="turbo")

    def test_bad_trials(self):
        with pytest.raises(ConfigurationError):
            small_spec(trials=0)


class TestExecution:
    def test_grid_shape(self):
        result = run_campaign(small_spec())
        assert len(result.cells) == 1 * 2 * 2  # protocols x workloads x sizes
        assert {cell.workload for cell in result.cells} == {"gnp", "path"}
        assert {cell.n for cell in result.cells} == {16, 24}

    def test_all_cells_succeed(self):
        result = run_campaign(small_spec())
        assert result.total_failures == 0
        for cell in result.cells:
            assert cell.mis_size_mean >= 1

    def test_deterministic(self):
        a = run_campaign(small_spec())
        b = run_campaign(small_spec())
        assert a.cells == b.cells

    def test_model_override(self):
        spec = small_spec(model="beep")
        result = run_campaign(spec)
        assert all(cell.model == "beep" for cell in result.cells)

    def test_table_and_csv(self):
        result = run_campaign(small_spec())
        table = result.to_table()
        assert "test-campaign" in table
        csv_text = result.to_csv()
        assert csv_text.splitlines()[0].startswith("protocol,model,workload")
        assert len(csv_text.strip().splitlines()) == 1 + len(result.cells)


class TestLoadFile:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "campaign.json"
        path.write_text(
            json.dumps(
                {
                    "name": "file-campaign",
                    "protocols": ["cd-mis"],
                    "workloads": ["path"],
                    "sizes": [12],
                }
            )
        )
        spec = load_campaign(path)
        assert spec.name == "file-campaign"
        assert spec.trials == 5  # default

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            load_campaign(path)

    def test_example_campaign_file_is_valid(self):
        from pathlib import Path

        example = (
            Path(__file__).parents[2] / "examples" / "campaign_cd_vs_naive.json"
        )
        spec = load_campaign(example)
        assert spec.name == "cd-vs-naive"
        assert "cd-mis" in spec.protocols


class TestCLICampaign:
    def test_cli_runs_campaign(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "c.json"
        path.write_text(
            json.dumps(
                {
                    "name": "cli-campaign",
                    "protocols": ["cd-mis"],
                    "workloads": ["path"],
                    "sizes": [12],
                    "trials": 2,
                    "profile": "fast",
                }
            )
        )
        csv_path = tmp_path / "out.csv"
        code = main(["campaign", str(path), "--csv", str(csv_path)])
        assert code == 0
        assert "cli-campaign" in capsys.readouterr().out
        assert csv_path.exists()


class TestErrorPaths:
    def test_unknown_protocol(self):
        with pytest.raises(ConfigurationError, match="unknown protocol.*choose from"):
            small_spec(protocols=["warp-mis"])

    def test_unknown_workload(self):
        with pytest.raises(ConfigurationError, match="unknown workload.*choose from"):
            small_spec(workloads=["moebius"])

    def test_unknown_model_override(self):
        with pytest.raises(ConfigurationError, match="unknown collision model"):
            small_spec(model="quantum")

    def test_malformed_json_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text('{"name": "x", "protocols": [')
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            load_campaign(path)

    def test_run_campaign_validates_direct_constructions(self):
        # Specs built via the constructor (bypassing from_dict) are
        # re-validated before any trial runs.
        spec = CampaignSpec(
            name="bad", protocols=("no-such-proto",), workloads=("path",),
            sizes=(8,),
        )
        with pytest.raises(ConfigurationError, match="unknown protocol"):
            run_campaign(spec)


class TestParallelAndCache:
    def test_parallel_campaign_matches_sequential(self):
        sequential = run_campaign(small_spec())
        parallel = run_campaign(small_spec(), jobs=4)
        assert parallel.cells == sequential.cells

    def test_repeat_campaign_is_all_cache_hits(self, tmp_path):
        from repro.exec.cache import ResultCache

        spec = small_spec()
        root = tmp_path / "cache"
        first = run_campaign(spec, cache=ResultCache(root))
        cache = ResultCache(root)
        second = run_campaign(spec, cache=cache)
        total_trials = spec.trials * len(first.cells)
        assert cache.stats.hits == total_trials
        assert cache.stats.misses == 0
        assert second.cells == first.cells

    def test_changed_grid_reuses_overlap(self, tmp_path):
        from repro.exec.cache import ResultCache

        root = tmp_path / "cache"
        run_campaign(small_spec(), cache=ResultCache(root))
        cache = ResultCache(root)
        grown = small_spec(sizes=[16, 24, 32])
        run_campaign(grown, cache=cache)
        # The 16/24 cells are served from cache; only n=32 is computed.
        assert cache.stats.hits == 2 * 2 * 2  # protocols x workloads(2) x trials
        assert cache.stats.writes == 2 * 1 * 2  # the new size only

    def test_cli_campaign_jobs_and_resume(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "c.json"
        path.write_text(
            json.dumps(
                {
                    "name": "cli-parallel",
                    "protocols": ["cd-mis"],
                    "workloads": ["path"],
                    "sizes": [12],
                    "trials": 2,
                    "profile": "fast",
                }
            )
        )
        cache_dir = tmp_path / "cache"
        argv = ["campaign", str(path), "--jobs", "2", "--resume",
                "--cache-dir", str(cache_dir)]
        assert main(list(argv)) == 0
        assert main(list(argv)) == 0  # resumed entirely from cache
        assert "cli-parallel" in capsys.readouterr().out
        assert list(cache_dir.glob("*.jsonl"))
