"""Tests for the declarative campaign runner."""

import json

import pytest

from repro.analysis.campaign import (
    CampaignSpec,
    load_campaign,
    run_campaign,
)
from repro.errors import ConfigurationError


def small_spec(**overrides):
    data = {
        "name": "test-campaign",
        "protocols": ["cd-mis"],
        "workloads": ["gnp", "path"],
        "sizes": [16, 24],
        "trials": 2,
        "profile": "fast",
        "seed": 1,
    }
    data.update(overrides)
    return CampaignSpec.from_dict(data)


class TestSpecValidation:
    def test_valid(self):
        spec = small_spec()
        assert spec.name == "test-campaign"
        assert spec.sizes == (16, 24)

    def test_missing_key(self):
        with pytest.raises(ConfigurationError, match="missing required key"):
            CampaignSpec.from_dict({"name": "x", "protocols": ["cd-mis"]})

    def test_empty_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            small_spec(protocols=[])
        with pytest.raises(ConfigurationError):
            small_spec(sizes=[])

    def test_bad_profile(self):
        with pytest.raises(ConfigurationError):
            small_spec(profile="turbo")

    def test_bad_trials(self):
        with pytest.raises(ConfigurationError):
            small_spec(trials=0)


class TestExecution:
    def test_grid_shape(self):
        result = run_campaign(small_spec())
        assert len(result.cells) == 1 * 2 * 2  # protocols x workloads x sizes
        assert {cell.workload for cell in result.cells} == {"gnp", "path"}
        assert {cell.n for cell in result.cells} == {16, 24}

    def test_all_cells_succeed(self):
        result = run_campaign(small_spec())
        assert result.total_failures == 0
        for cell in result.cells:
            assert cell.mis_size_mean >= 1

    def test_deterministic(self):
        a = run_campaign(small_spec())
        b = run_campaign(small_spec())
        assert a.cells == b.cells

    def test_model_override(self):
        spec = small_spec(model="beep")
        result = run_campaign(spec)
        assert all(cell.model == "beep" for cell in result.cells)

    def test_table_and_csv(self):
        result = run_campaign(small_spec())
        table = result.to_table()
        assert "test-campaign" in table
        csv_text = result.to_csv()
        assert csv_text.splitlines()[0].startswith("protocol,model,workload")
        assert len(csv_text.strip().splitlines()) == 1 + len(result.cells)


class TestLoadFile:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "campaign.json"
        path.write_text(
            json.dumps(
                {
                    "name": "file-campaign",
                    "protocols": ["cd-mis"],
                    "workloads": ["path"],
                    "sizes": [12],
                }
            )
        )
        spec = load_campaign(path)
        assert spec.name == "file-campaign"
        assert spec.trials == 5  # default

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            load_campaign(path)

    def test_example_campaign_file_is_valid(self):
        from pathlib import Path

        example = (
            Path(__file__).parents[2] / "examples" / "campaign_cd_vs_naive.json"
        )
        spec = load_campaign(example)
        assert spec.name == "cd-vs-naive"
        assert "cd-mis" in spec.protocols


class TestCLICampaign:
    def test_cli_runs_campaign(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "c.json"
        path.write_text(
            json.dumps(
                {
                    "name": "cli-campaign",
                    "protocols": ["cd-mis"],
                    "workloads": ["path"],
                    "sizes": [12],
                    "trials": 2,
                    "profile": "fast",
                }
            )
        )
        csv_path = tmp_path / "out.csv"
        code = main(["campaign", str(path), "--csv", str(csv_path)])
        assert code == 0
        assert "cli-campaign" in capsys.readouterr().out
        assert csv_path.exists()
