"""Tests for complexity fitting, table rendering, and MIS validation."""

import math

import pytest

from repro.analysis.complexity_fit import doubling_ratios, fit_log_power
from repro.analysis.tables import format_cell, render_series, render_table
from repro.analysis.validation import validate_mis, validate_run
from repro.errors import ConfigurationError, ValidationError
from repro.graphs import path_graph


class TestLogPowerFit:
    @pytest.mark.parametrize("true_p", [1.0, 2.0, 3.0])
    def test_recovers_exact_exponent(self, true_p):
        sizes = [64, 128, 256, 512, 1024, 2048]
        values = [3.0 * math.log2(n) ** true_p for n in sizes]
        fit = fit_log_power(sizes, values)
        assert fit.exponent == pytest.approx(true_p, abs=0.01)
        assert fit.best_integer_exponent == true_p
        assert fit.coefficient == pytest.approx(3.0, rel=0.05)

    def test_predict(self):
        sizes = [64, 256, 1024]
        values = [2.0 * math.log2(n) for n in sizes]
        fit = fit_log_power(sizes, values)
        assert fit.predict(512) == pytest.approx(2.0 * math.log2(512), rel=0.05)

    def test_noise_tolerance(self):
        sizes = [64, 128, 256, 512, 1024]
        values = [
            5.0 * math.log2(n) ** 2 * (1.1 if i % 2 else 0.9)
            for i, n in enumerate(sizes)
        ]
        fit = fit_log_power(sizes, values)
        assert fit.best_integer_exponent == 2.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            fit_log_power([64], [1.0])
        with pytest.raises(ConfigurationError):
            fit_log_power([64, 128], [1.0])
        with pytest.raises(ConfigurationError):
            fit_log_power([64, 128], [1.0, -2.0])
        with pytest.raises(ConfigurationError):
            fit_log_power([1, 128], [1.0, 2.0])
        with pytest.raises(ConfigurationError):
            fit_log_power([64, 64], [1.0, 2.0])

    def test_doubling_ratios(self):
        assert doubling_ratios([64, 128], [10.0, 12.0]) == [pytest.approx(1.2)]
        with pytest.raises(ConfigurationError):
            doubling_ratios([64], [10.0, 12.0])
        with pytest.raises(ConfigurationError):
            doubling_ratios([64, 128], [0.0, 12.0])


class TestTables:
    def test_format_cell(self):
        assert format_cell(True) == "yes"
        assert format_cell(0.0) == "0"
        assert format_cell(1234567.0) == "1.235e+06"
        assert format_cell(0.12345) == "0.1235"
        assert format_cell("abc") == "abc"
        assert format_cell(42) == "42"

    def test_render_table_aligned(self):
        table = render_table(["a", "bb"], [(1, 2), (30, 400)], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert all(len(line) == len(lines[1]) for line in lines[1:])
        assert "400" in table

    def test_render_series(self):
        chart = render_series([1, 2], [1.0, 2.0], x_label="n", y_label="E")
        assert "####" in chart
        assert "n" in chart.splitlines()[0]

    def test_render_series_length_mismatch(self):
        with pytest.raises(ValueError):
            render_series([1], [1.0, 2.0])

    def test_render_series_all_zero(self):
        chart = render_series([1, 2], [0.0, 0.0])
        assert "#" not in chart


class TestValidation:
    def test_valid_report(self):
        graph = path_graph(5)
        report = validate_mis(graph, {0, 2, 4})
        assert report.valid
        assert report.mis_size == 3
        assert report.failure_kinds == []
        assert "valid MIS" in report.describe()

    def test_invalid_reports_kinds(self):
        graph = path_graph(5)
        report = validate_mis(graph, {0, 1}, undecided=[4])
        assert not report.valid
        assert set(report.failure_kinds) == {"undecided", "independence", "domination"}
        assert "INVALID" in report.describe()

    def test_validate_run_strict_raises(self, fast_constants):
        from repro.core import CDMISProtocol
        from repro.radio import CD, run_protocol
        from repro.radio.metrics import RunResult

        graph = path_graph(5)
        result = run_protocol(
            graph, CDMISProtocol(constants=fast_constants), CD, seed=0
        )
        report = validate_run(result, strict=True)  # should be valid
        assert report.valid
        # Build a corrupted result to exercise the strict path.
        bad = RunResult(
            graph=graph,
            protocol_name="bad",
            model_name="cd",
            seed=0,
            rounds=1,
            node_stats=(),
            node_info=(),
        )
        # Empty stats -> empty MIS -> domination violations.
        with pytest.raises(ValidationError):
            validate_run(bad, strict=True)


class TestFormatCellConsistency:
    """One ``%.4g`` rule for floats, everywhere (claims report tables
    reuse ``format_cell``, so drift here would desynchronize the
    benchmark tables from the regenerated E1/E2/E4 tables)."""

    def test_integral_float_matches_int_rendering(self):
        assert format_cell(5200.0) == format_cell(5200) == "5200"
        assert format_cell(-17.0) == format_cell(-17) == "-17"

    def test_scientific_notation_threshold(self):
        # %.4g switches to scientific only past 4 significant digits.
        assert format_cell(9999.0) == "9999"
        assert format_cell(10830.0) == "1.083e+04"
        assert format_cell(0.0001234) == "0.0001234"
        assert format_cell(0.00001234) == "1.234e-05"

    def test_zero_and_negative_zero(self):
        assert format_cell(0.0) == "0"
        assert format_cell(-0.0) == "0"

    def test_bools_never_hit_numeric_path(self):
        assert format_cell(False) == "no"
        assert format_cell(True) == "yes"

    def test_same_magnitude_same_rendering(self):
        # The property the report generator depends on: equal float
        # values render identically regardless of which table emits them.
        assert format_cell(446960.0) == "4.47e+05"
        assert format_cell(446960.00000001) == "4.47e+05"
