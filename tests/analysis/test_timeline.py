"""Tests for trace-based timeline analytics."""

import pytest

from repro.analysis.timeline import (
    activity_span,
    busiest_rounds,
    channel_utilization,
    collision_pressure,
    cumulative_energy,
    duty_cycle,
)
from repro.core import CDMISProtocol
from repro.graphs import gnp_random_graph, path_graph, star_graph
from repro.radio import CD, Listen, Sleep, TraceRecorder, Transmit, run_protocol
from tests.radio.test_engine import ScriptProtocol


@pytest.fixture
def scripted_trace():
    trace = TraceRecorder()
    protocol = ScriptProtocol(
        {
            0: [Transmit(), Sleep(1), Transmit()],
            1: [Transmit(), Listen(), Listen()],
            2: [Listen(), Listen()],
        }
    )
    run_protocol(star_graph(3), protocol, CD, seed=0, trace=trace)
    return trace


class TestChannelUtilization:
    def test_counts_per_round(self, scripted_trace):
        utilization = channel_utilization(scripted_trace)
        assert utilization == {0: 2, 2: 1}

    def test_busiest_rounds(self, scripted_trace):
        assert busiest_rounds(scripted_trace, top=1) == [(0, 2)]
        assert busiest_rounds(scripted_trace, top=5) == [(0, 2), (2, 1)]

    def test_collision_pressure(self, scripted_trace):
        assert collision_pressure(scripted_trace) == {2: 1, 1: 1}


class TestPerNodeViews:
    def test_activity_span(self, scripted_trace):
        assert activity_span(scripted_trace, 0) == (0, 2)
        assert activity_span(scripted_trace, 2) == (0, 1)

    def test_activity_span_sleeper(self):
        trace = TraceRecorder()
        run_protocol(
            path_graph(2), ScriptProtocol({0: [Sleep(3)]}), CD, seed=0, trace=trace
        )
        assert activity_span(trace, 0) == (-1, -1)

    def test_cumulative_energy(self, scripted_trace):
        curve = cumulative_energy(scripted_trace, 0)
        assert curve == [(0, 1), (2, 2)]

    def test_duty_cycle(self, scripted_trace):
        assert duty_cycle(scripted_trace, 1, total_rounds=3) == pytest.approx(1.0)
        assert duty_cycle(scripted_trace, 0, total_rounds=3) == pytest.approx(2 / 3)
        assert duty_cycle(scripted_trace, 0, total_rounds=0) == 0.0


class TestOnRealAlgorithm:
    def test_curves_match_energy_accounting(self, fast_constants):
        graph = gnp_random_graph(24, 0.2, seed=3)
        trace = TraceRecorder()
        result = run_protocol(
            graph, CDMISProtocol(constants=fast_constants), CD, seed=3, trace=trace
        )
        for stats in result.node_stats:
            curve = cumulative_energy(trace, stats.node)
            total = curve[-1][1] if curve else 0
            assert total == stats.awake_rounds

    def test_mis_algorithm_has_low_duty_cycle(self, fast_constants):
        # The whole point of the paper: nodes are mostly asleep.
        graph = gnp_random_graph(48, 0.12, seed=5)
        trace = TraceRecorder()
        result = run_protocol(
            graph, CDMISProtocol(constants=fast_constants), CD, seed=5, trace=trace
        )
        cycles = [
            duty_cycle(trace, node, result.rounds) for node in graph.nodes
        ]
        assert sum(cycles) / len(cycles) < 0.6
