"""Tests for the multi-trial runner and size-sweep harness."""

import pytest

from repro.analysis.runner import run_trials
from repro.analysis.sweep import run_size_sweep
from repro.core import CDMISProtocol
from repro.graphs import gnp_random_graph, path_graph
from repro.radio import CD


class TestRunTrials:
    def test_fixed_graph(self, fast_constants):
        summary = run_trials(
            path_graph(8), CDMISProtocol(constants=fast_constants), CD, seeds=range(5)
        )
        assert summary.trials == 5
        assert summary.failures == 0
        assert summary.failure_rate == 0.0
        assert summary.graph_name == "path(n=8)"

    def test_graph_factory(self, fast_constants):
        summary = run_trials(
            lambda seed: gnp_random_graph(16, 0.2, seed=seed),
            CDMISProtocol(constants=fast_constants),
            CD,
            seeds=range(4),
        )
        assert summary.trials == 4

    def test_summaries_consistent(self, fast_constants):
        summary = run_trials(
            path_graph(8), CDMISProtocol(constants=fast_constants), CD, seeds=range(5)
        )
        energy = summary.max_energy_summary()
        assert energy.count == 5
        assert energy.minimum <= energy.mean <= energy.maximum
        rounds = summary.rounds_summary()
        assert rounds.minimum >= 1
        sizes = summary.mis_size_summary()
        assert sizes.minimum >= 1

    def test_keep_results(self, fast_constants):
        summary = run_trials(
            path_graph(6),
            CDMISProtocol(constants=fast_constants),
            CD,
            seeds=range(3),
            keep_results=True,
        )
        assert len(summary.results) == 3
        assert summary.results[0].graph.num_nodes == 6

    def test_interval_sane(self, fast_constants):
        summary = run_trials(
            path_graph(6), CDMISProtocol(constants=fast_constants), CD, seeds=range(3)
        )
        low, high = summary.failure_rate_interval()
        assert 0.0 <= low <= high <= 1.0

    def test_describe_renders(self, fast_constants):
        summary = run_trials(
            path_graph(6), CDMISProtocol(constants=fast_constants), CD, seeds=range(2)
        )
        text = summary.describe()
        assert "trials" in text and "max-energy" in text


class TestSizeSweep:
    def test_sweep_shape(self, fast_constants):
        result = run_size_sweep(
            (16, 32),
            lambda n, seed: gnp_random_graph(n, 0.2, seed=seed),
            lambda n: CDMISProtocol(constants=fast_constants),
            CD,
            trials=3,
        )
        assert result.sizes == [16, 32]
        assert len(result.points) == 2
        assert all(point.trials == 3 for point in result.points)

    def test_series_and_fit(self, fast_constants):
        result = run_size_sweep(
            (16, 32, 64, 128),
            lambda n, seed: gnp_random_graph(n, 8.0 / (n - 1), seed=seed),
            lambda n: CDMISProtocol(constants=fast_constants),
            CD,
            trials=3,
        )
        series = result.series("max_energy_mean")
        assert len(series) == 4
        fit = result.fit("max_energy_mean")
        # CD MIS energy is Theta(log n): fitted exponent far below 2.
        assert fit.exponent < 2.0

    def test_table_renders(self, fast_constants):
        result = run_size_sweep(
            (16, 32),
            lambda n, seed: gnp_random_graph(n, 0.2, seed=seed),
            lambda n: CDMISProtocol(constants=fast_constants),
            CD,
            trials=2,
        )
        table = result.to_table()
        assert "cd-mis@cd" in table
        assert "fail%" in table
