"""Shared fixtures for the test suite.

Tests of randomized algorithms fix seeds: a test asserts behaviour of a
*specific* reproducible run (or a statistical property over many seeded
runs with generous margins), never of an unseeded one.
"""

import pytest

from repro.constants import ConstantsProfile
from repro.graphs import (
    complete_graph,
    cycle_graph,
    empty_graph,
    gnp_random_graph,
    grid_graph,
    path_graph,
    random_tree,
    star_graph,
)


@pytest.fixture(scope="session")
def fast_constants():
    """Cheap constants for unit tests (see ConstantsProfile.fast)."""
    return ConstantsProfile.fast()


@pytest.fixture(scope="session")
def practical_constants():
    return ConstantsProfile.practical()


@pytest.fixture(scope="session")
def small_graphs():
    """A spread of small topologies exercising extremal shapes."""
    return [
        empty_graph(6),
        path_graph(9),
        cycle_graph(8),
        star_graph(10),
        complete_graph(7),
        grid_graph(3, 4),
        random_tree(12, seed=3),
        gnp_random_graph(24, 0.2, seed=5),
    ]


@pytest.fixture(scope="session")
def medium_graph():
    """One medium random graph for integration-level checks."""
    return gnp_random_graph(64, 0.1, seed=1)
