"""Shared fixtures for the test suite.

Tests of randomized algorithms fix seeds: a test asserts behaviour of a
*specific* reproducible run (or a statistical property over many seeded
runs with generous margins), never of an unseeded one.
"""

import os

import pytest
from hypothesis import settings as hypothesis_settings

from repro.constants import ConstantsProfile

# Deterministic Hypothesis runs for tier-1 CI: ``derandomize`` derives
# examples from each test's source instead of a random seed, so the
# suite explores the same cases on every run (no flaky shrink sessions
# in CI).  Select an exploratory profile locally with
# ``HYPOTHESIS_PROFILE=default``.
hypothesis_settings.register_profile(
    "repro-ci", derandomize=True, deadline=None
)
hypothesis_settings.load_profile(
    os.environ.get("HYPOTHESIS_PROFILE", "repro-ci")
)
from repro.graphs import (
    complete_graph,
    cycle_graph,
    empty_graph,
    gnp_random_graph,
    grid_graph,
    path_graph,
    random_tree,
    star_graph,
)


@pytest.fixture(scope="session")
def fast_constants():
    """Cheap constants for unit tests (see ConstantsProfile.fast)."""
    return ConstantsProfile.fast()


@pytest.fixture(scope="session")
def practical_constants():
    return ConstantsProfile.practical()


@pytest.fixture(scope="session")
def small_graphs():
    """A spread of small topologies exercising extremal shapes."""
    return [
        empty_graph(6),
        path_graph(9),
        cycle_graph(8),
        star_graph(10),
        complete_graph(7),
        grid_graph(3, 4),
        random_tree(12, seed=3),
        gnp_random_graph(24, 0.2, seed=5),
    ]


@pytest.fixture(scope="session")
def medium_graph():
    """One medium random graph for integration-level checks."""
    return gnp_random_graph(64, 0.1, seed=1)
