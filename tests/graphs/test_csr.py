"""Memoized flat-CSR adjacency on :class:`Graph` (``Graph.csr()``)."""

import pytest

np = pytest.importorskip("numpy")

from repro.graphs import Graph, gnp_random_graph, empty_graph, star_graph


def test_csr_lists_sorted_neighbors():
    graph = gnp_random_graph(50, 0.2, seed=1)
    indptr, indices = graph.csr()
    assert indptr.shape == (graph.num_nodes + 1,)
    assert indptr[-1] == len(indices) == 2 * len(graph.edges)
    for node in range(graph.num_nodes):
        span = indices[indptr[node]:indptr[node + 1]]
        assert tuple(span.tolist()) == graph.neighbors(node)


def test_csr_is_int32_and_read_only():
    graph = star_graph(5)
    indptr, indices = graph.csr()
    assert indptr.dtype == np.int32
    assert indices.dtype == np.int32
    assert not indptr.flags.writeable
    assert not indices.flags.writeable
    with pytest.raises(ValueError):
        indices[0] = 99


def test_csr_memoized_same_arrays():
    graph = gnp_random_graph(20, 0.3, seed=2)
    first = graph.csr()
    second = graph.csr()
    assert first[0] is second[0]
    assert first[1] is second[1]


def test_csr_isolated_and_empty():
    graph = empty_graph(4)
    indptr, indices = graph.csr()
    assert indptr.tolist() == [0, 0, 0, 0, 0]
    assert indices.size == 0

    lonely = Graph(1, [], name="lonely")
    indptr, indices = lonely.csr()
    assert indptr.tolist() == [0, 0]
    assert indices.size == 0
