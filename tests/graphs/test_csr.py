"""Memoized flat-CSR adjacency on :class:`Graph` (``Graph.csr()``)."""

import pytest

np = pytest.importorskip("numpy")

from repro.graphs import Graph, gnp_random_graph, empty_graph, star_graph


def test_csr_lists_sorted_neighbors():
    graph = gnp_random_graph(50, 0.2, seed=1)
    indptr, indices = graph.csr()
    assert indptr.shape == (graph.num_nodes + 1,)
    assert indptr[-1] == len(indices) == 2 * len(graph.edges)
    for node in range(graph.num_nodes):
        span = indices[indptr[node]:indptr[node + 1]]
        assert tuple(span.tolist()) == graph.neighbors(node)


def test_csr_is_int32_and_read_only():
    graph = star_graph(5)
    indptr, indices = graph.csr()
    assert indptr.dtype == np.int32
    assert indices.dtype == np.int32
    assert not indptr.flags.writeable
    assert not indices.flags.writeable
    with pytest.raises(ValueError):
        indices[0] = 99


def test_csr_memoized_same_arrays():
    graph = gnp_random_graph(20, 0.3, seed=2)
    first = graph.csr()
    second = graph.csr()
    assert first[0] is second[0]
    assert first[1] is second[1]


def test_csr_isolated_and_empty():
    graph = empty_graph(4)
    indptr, indices = graph.csr()
    assert indptr.tolist() == [0, 0, 0, 0, 0]
    assert indices.size == 0

    lonely = Graph(1, [], name="lonely")
    indptr, indices = lonely.csr()
    assert indptr.tolist() == [0, 0]
    assert indices.size == 0


def test_csr_index_dtypes_boundary():
    """int32 up to and including 2^31-1, int64 past it — independently
    for the node count (indices) and the directed edge count (indptr).
    Constructed synthetically: no multi-gigabyte allocation needed to
    pin the overflow behaviour."""
    from repro.errors import GraphError
    from repro.graphs import csr_index_dtypes

    int32_max = 2**31 - 1
    assert csr_index_dtypes(0, 0) == (np.int32, np.int32)
    assert csr_index_dtypes(10**6, 8 * 10**6) == (np.int32, np.int32)
    assert csr_index_dtypes(int32_max, int32_max) == (np.int32, np.int32)
    # A directed edge count one past int32 forces an int64 indptr but
    # leaves node indices at int32 (and vice versa).
    assert csr_index_dtypes(10**6, int32_max + 1) == (np.int64, np.int32)
    assert csr_index_dtypes(int32_max + 1, 100) == (np.int32, np.int64)
    assert csr_index_dtypes(int32_max + 1, int32_max + 1) == (
        np.int64,
        np.int64,
    )
    with pytest.raises(GraphError):
        csr_index_dtypes(-1, 0)
    with pytest.raises(GraphError):
        csr_index_dtypes(0, -1)


def test_from_csr_round_trips_and_validates():
    eager = gnp_random_graph(40, 0.2, seed=4)
    indptr, indices = eager.csr()
    rebuilt = Graph.from_csr(indptr, indices, name=eager.name)
    assert rebuilt == eager
    assert rebuilt.csr()[0].dtype == np.int32

    from repro.errors import GraphError

    # Self-loop smuggled into an otherwise well-formed CSR.
    with pytest.raises(GraphError):
        Graph.from_csr(
            np.array([0, 1, 2], dtype=np.int64),
            np.array([0, 0], dtype=np.int64),
        )
    # Asymmetric: 0->1 without 1->0.
    with pytest.raises(GraphError):
        Graph.from_csr(
            np.array([0, 1, 1], dtype=np.int64),
            np.array([1], dtype=np.int64),
        )
