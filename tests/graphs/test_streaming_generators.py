"""Streaming CSR graph builders vs the eager generators.

The streaming builders exist so the large-n regime never materializes
Python edge tuples, but their *contract* is equality: the same seed
must produce the same graph as the eager generator, for every chunk
size.  That equality is what lets the workload catalog switch builders
at ``STREAMING_MIN_NODES`` without changing any experiment's inputs.
"""

import pytest

np = pytest.importorskip("numpy")

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs import (
    Graph,
    gnp_random_graph,
    graph_from_edge_chunks,
    matching_plus_isolated_graph,
    random_regularish_graph,
    stream_gnp_edges,
    streaming_gnp_random_graph,
    streaming_matching_plus_isolated_graph,
    streaming_regularish_graph,
)


def assert_graphs_equal(streamed: Graph, eager: Graph):
    """Full structural equality, checked through every accessor."""
    assert streamed.num_nodes == eager.num_nodes
    assert streamed.num_edges == eager.num_edges
    assert streamed.max_degree() == eager.max_degree()
    assert streamed.name == eager.name
    assert tuple(streamed.iter_edges()) == eager.edges
    s_indptr, s_indices = streamed.csr()
    e_indptr, e_indices = eager.csr()
    assert np.array_equal(s_indptr, e_indptr)
    assert np.array_equal(s_indices, e_indices)


def assert_csr_invariants(graph: Graph):
    """CSR structure: sorted rows, no self-loops, symmetric."""
    indptr, indices = graph.csr()
    n = graph.num_nodes
    assert indptr[0] == 0
    assert indptr[-1] == indices.size
    assert np.all(np.diff(indptr) >= 0)
    if indices.size:
        assert indices.min() >= 0 and indices.max() < n
    rows = np.repeat(np.arange(n), np.diff(indptr))
    # No self-loops.
    assert not np.any(rows == indices)
    # Each row sorted strictly increasing (sorted + deduplicated).
    interior = np.setdiff1d(np.arange(1, indices.size), indptr[1:-1])
    if interior.size:
        assert np.all(indices[interior] > indices[interior - 1])
    # Symmetry: the directed edge set equals its own reverse.
    forward = np.sort(rows.astype(np.int64) * n + indices)
    backward = np.sort(indices.astype(np.int64) * n + rows)
    assert np.array_equal(forward, backward)


# ----------------------------------------------------------------------
# Chunk-size invariance: the chunking is an implementation detail
# ----------------------------------------------------------------------


@settings(max_examples=40)
@given(
    n=st.integers(min_value=0, max_value=80),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    p_percent=st.integers(min_value=0, max_value=100),
    chunk_size=st.integers(min_value=1, max_value=5000),
)
def test_gnp_chunk_size_never_changes_the_graph(n, seed, p_percent, chunk_size):
    p = p_percent / 100.0
    reference = streaming_gnp_random_graph(n, p, seed=seed)
    chunked = streaming_gnp_random_graph(n, p, seed=seed, chunk_size=chunk_size)
    assert_graphs_equal(chunked, reference)
    assert_csr_invariants(chunked)


@settings(max_examples=25)
@given(
    n=st.integers(min_value=0, max_value=60),
    degree=st.integers(min_value=0, max_value=8),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    chunk_size=st.integers(min_value=1, max_value=500),
)
def test_regularish_chunk_size_never_changes_the_graph(
    n, degree, seed, chunk_size
):
    assume(n == 0 or degree < n)
    reference = streaming_regularish_graph(n, degree, seed=seed)
    chunked = streaming_regularish_graph(
        n, degree, seed=seed, chunk_size=chunk_size
    )
    assert_graphs_equal(chunked, reference)
    assert_csr_invariants(chunked)


# ----------------------------------------------------------------------
# Eager equivalence: same seed, same graph
# ----------------------------------------------------------------------


@settings(max_examples=40)
@given(
    n=st.integers(min_value=0, max_value=80),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    p_percent=st.integers(min_value=0, max_value=100),
)
def test_gnp_streaming_equals_eager(n, seed, p_percent):
    p = p_percent / 100.0
    assert_graphs_equal(
        streaming_gnp_random_graph(n, p, seed=seed),
        gnp_random_graph(n, p, seed=seed),
    )


@settings(max_examples=25)
@given(
    n=st.integers(min_value=0, max_value=60),
    degree=st.integers(min_value=0, max_value=8),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_regularish_streaming_equals_eager(n, degree, seed):
    assume(n == 0 or degree < n)
    assert_graphs_equal(
        streaming_regularish_graph(n, degree, seed=seed),
        random_regularish_graph(n, degree, seed=seed),
    )


@settings(max_examples=25)
@given(n=st.integers(min_value=0, max_value=200))
def test_matching_plus_isolated_streaming_equals_eager(n):
    n = 4 * (n // 4)
    assert_graphs_equal(
        streaming_matching_plus_isolated_graph(n),
        matching_plus_isolated_graph(n),
    )


def test_gnp_edge_probability_boundaries():
    for p in (0.0, 1.0):
        for n in (0, 1, 2, 7):
            assert_graphs_equal(
                streaming_gnp_random_graph(n, p, seed=3),
                gnp_random_graph(n, p, seed=3),
            )


def test_gnp_equivalence_at_a_larger_size():
    # One non-Hypothesis case big enough to cross chunk boundaries with
    # the default chunk size halved far below the edge count.
    streamed = streaming_gnp_random_graph(3000, 8.0 / 2999, seed=11,
                                          chunk_size=997)
    eager = gnp_random_graph(3000, 8.0 / 2999, seed=11)
    assert_graphs_equal(streamed, eager)
    assert_csr_invariants(streamed)


# ----------------------------------------------------------------------
# The chunk builder itself
# ----------------------------------------------------------------------


def test_graph_from_edge_chunks_dedups_and_symmetrizes():
    chunks = [
        np.array([[0, 1], [1, 0], [2, 3]], dtype=np.int64),
        np.array([[0, 1]], dtype=np.int64),
    ]
    graph = graph_from_edge_chunks(4, iter(chunks), name="dup")
    assert tuple(graph.iter_edges()) == ((0, 1), (2, 3))
    assert_csr_invariants(graph)


def test_graph_from_edge_chunks_rejects_bad_input():
    with pytest.raises(GraphError):
        graph_from_edge_chunks(
            3, iter([np.array([[0, 3]], dtype=np.int64)]), name="oob"
        )
    with pytest.raises(GraphError):
        graph_from_edge_chunks(
            3, iter([np.array([[1, 1]], dtype=np.int64)]), name="loop"
        )


def test_stream_chunk_size_must_be_positive():
    with pytest.raises(GraphError):
        list(stream_gnp_edges(10, 0.5, seed=0, chunk_size=0))


def test_streamed_graph_is_lazy_until_edges_are_asked_for():
    # The point of the exercise: building via CSR must not materialize
    # the adjacency tuples.  Touching them afterwards still works.
    graph = streaming_gnp_random_graph(500, 0.01, seed=9)
    assert graph._adjacency is None
    assert graph._edges is None
    degree_sum = sum(graph.degree(v) for v in range(graph.num_nodes))
    assert degree_sum == 2 * graph.num_edges
    assert graph._adjacency is None  # degrees answered from CSR
    eager = gnp_random_graph(500, 0.01, seed=9)
    assert graph.edges == eager.edges  # materializes, still equal
