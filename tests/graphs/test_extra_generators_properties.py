"""Tests for the extended generators and structural analyzers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs import (
    average_clustering,
    barbell_graph,
    complete_graph,
    cycle_graph,
    degeneracy,
    degeneracy_ordering,
    diameter,
    eccentricity,
    empty_graph,
    gnp_random_graph,
    greedy_mis,
    hypercube_graph,
    path_graph,
    planted_independent_set_graph,
    random_tree,
    star_graph,
    torus_graph,
    triangle_count,
)


class TestTorus:
    def test_four_regular(self):
        graph = torus_graph(4, 5)
        assert all(graph.degree(node) == 4 for node in graph.nodes)
        assert graph.num_edges == 2 * 20

    def test_too_small_rejected(self):
        with pytest.raises(GraphError):
            torus_graph(2, 5)


class TestHypercube:
    @pytest.mark.parametrize("d", [0, 1, 2, 3, 5])
    def test_structure(self, d):
        graph = hypercube_graph(d)
        assert graph.num_nodes == 1 << d
        assert all(graph.degree(node) == d for node in graph.nodes)
        assert graph.num_edges == d * (1 << d) // 2

    def test_negative_rejected(self):
        with pytest.raises(GraphError):
            hypercube_graph(-1)

    def test_bipartite_no_triangles(self):
        assert triangle_count(hypercube_graph(4)) == 0


class TestBarbell:
    def test_structure(self):
        graph = barbell_graph(4, 3)
        # Two K4 (6 edges each) + 3 path edges.
        assert graph.num_edges == 6 + 6 + 3
        assert graph.num_nodes == 4 + 2 + 4

    def test_path_length_one_joins_cliques_directly(self):
        graph = barbell_graph(3, 1)
        assert graph.num_nodes == 6
        assert graph.has_edge(2, 3)

    def test_validation(self):
        with pytest.raises(GraphError):
            barbell_graph(0, 2)
        with pytest.raises(GraphError):
            barbell_graph(3, 0)


class TestPlanted:
    def test_planted_set_is_independent(self):
        graph = planted_independent_set_graph(40, 15, 0.4, seed=1)
        assert graph.is_independent_set(range(15))

    def test_rest_has_edges(self):
        graph = planted_independent_set_graph(40, 15, 0.4, seed=1)
        assert graph.num_edges > 0

    def test_p_one_everything_outside_connected(self):
        graph = planted_independent_set_graph(10, 4, 1.0, seed=1)
        assert graph.has_edge(4, 5)
        assert graph.has_edge(0, 9)
        assert not graph.has_edge(0, 1)

    def test_validation(self):
        with pytest.raises(GraphError):
            planted_independent_set_graph(10, 11, 0.5)
        with pytest.raises(GraphError):
            planted_independent_set_graph(10, 3, 1.5)

    def test_greedy_mis_at_least_decent(self):
        graph = planted_independent_set_graph(60, 20, 0.3, seed=3)
        mis = greedy_mis(graph, order=list(range(60)))
        assert len(mis) >= 20  # natural order starts inside the planted set


class TestDistances:
    def test_path_diameter(self):
        assert diameter(path_graph(7)) == 6

    def test_cycle_diameter(self):
        assert diameter(cycle_graph(8)) == 4
        assert diameter(cycle_graph(9)) == 4

    def test_star_eccentricities(self):
        graph = star_graph(6)
        assert eccentricity(graph, 0) == 1
        assert eccentricity(graph, 3) == 2

    def test_hypercube_diameter_is_dimension(self):
        assert diameter(hypercube_graph(4)) == 4

    def test_disconnected_uses_component_max(self):
        from repro.graphs import Graph

        graph = Graph(5, [(0, 1), (1, 2)])
        assert diameter(graph) == 2
        assert eccentricity(graph, 4) == 0

    def test_empty(self):
        from repro.graphs import Graph

        assert diameter(Graph(0)) == 0


class TestDegeneracy:
    def test_tree_degeneracy_one(self):
        assert degeneracy(random_tree(20, seed=1)) == 1

    def test_clique(self):
        assert degeneracy(complete_graph(6)) == 5

    def test_cycle(self):
        assert degeneracy(cycle_graph(9)) == 2

    def test_empty(self):
        assert degeneracy(empty_graph(4)) == 0
        from repro.graphs import Graph

        assert degeneracy(Graph(0)) == 0

    def test_ordering_is_permutation(self):
        graph = gnp_random_graph(30, 0.2, seed=2)
        ordering = degeneracy_ordering(graph)
        assert sorted(ordering) == list(range(30))

    @given(st.integers(1, 25), st.integers(0, 5))
    @settings(max_examples=25, deadline=None)
    def test_degeneracy_below_max_degree(self, n, seed):
        graph = gnp_random_graph(n, 0.3, seed=seed)
        assert degeneracy(graph) <= graph.max_degree()


class TestTrianglesClustering:
    def test_clique_triangles(self):
        assert triangle_count(complete_graph(5)) == 10

    def test_tree_has_none(self):
        assert triangle_count(random_tree(15, seed=4)) == 0

    def test_clique_clustering_is_one(self):
        assert average_clustering(complete_graph(6)) == pytest.approx(1.0)

    def test_star_clustering_is_zero(self):
        assert average_clustering(star_graph(8)) == 0.0

    def test_empty_graph(self):
        from repro.graphs import Graph

        assert average_clustering(Graph(0)) == 0.0

    def test_clustering_in_unit_interval(self):
        graph = gnp_random_graph(30, 0.3, seed=5)
        assert 0.0 <= average_clustering(graph) <= 1.0
