"""Structural tests for every topology generator."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs import generators as gen


class TestGnp:
    def test_p_zero_is_edgeless(self):
        assert gen.gnp_random_graph(20, 0.0, seed=1).num_edges == 0

    def test_p_one_is_complete(self):
        graph = gen.gnp_random_graph(10, 1.0, seed=1)
        assert graph.num_edges == 45

    def test_seed_determinism(self):
        a = gen.gnp_random_graph(30, 0.2, seed=7)
        b = gen.gnp_random_graph(30, 0.2, seed=7)
        assert a == b

    def test_different_seeds_differ(self):
        a = gen.gnp_random_graph(30, 0.2, seed=7)
        b = gen.gnp_random_graph(30, 0.2, seed=8)
        assert a != b

    def test_bad_probability_rejected(self):
        with pytest.raises(GraphError):
            gen.gnp_random_graph(5, 1.5)
        with pytest.raises(GraphError):
            gen.gnp_random_graph(5, -0.1)

    def test_edge_count_near_expectation(self):
        # n=200, p=0.1: expectation 1990, sd ~42; 5 sd tolerance.
        graph = gen.gnp_random_graph(200, 0.1, seed=3)
        expected = 0.1 * 200 * 199 / 2
        assert abs(graph.num_edges - expected) < 5 * (expected * 0.9) ** 0.5

    @given(st.integers(0, 40), st.floats(0.0, 1.0))
    @settings(max_examples=30, deadline=None)
    def test_always_simple(self, n, p):
        graph = gen.gnp_random_graph(n, p, seed=0)
        assert graph.num_nodes == n
        assert all(u != v for u, v in graph.edges)


class TestGeometric:
    def test_radius_zero_is_edgeless(self):
        assert gen.random_geometric_graph(30, 0.0, seed=1).num_edges == 0

    def test_radius_sqrt2_is_complete(self):
        graph = gen.random_geometric_graph(12, 1.5, seed=1)
        assert graph.num_edges == 12 * 11 // 2

    def test_negative_radius_rejected(self):
        with pytest.raises(GraphError):
            gen.random_geometric_graph(5, -0.5)

    def test_matches_bruteforce(self):
        # The grid-accelerated construction must equal the O(n^2) answer.
        rng = random.Random(9)
        points = [(rng.random(), rng.random()) for _ in range(40)]
        radius = 0.25
        expected = {
            (u, v)
            for u in range(40)
            for v in range(u + 1, 40)
            if (points[u][0] - points[v][0]) ** 2
            + (points[u][1] - points[v][1]) ** 2
            <= radius * radius
        }
        graph = gen.random_geometric_graph(40, radius, rng=random.Random(9))
        assert set(graph.edges) == expected


class TestBoundedDegree:
    @pytest.mark.parametrize("max_degree", [0, 1, 3, 6])
    def test_respects_cap(self, max_degree):
        graph = gen.random_bounded_degree_graph(40, max_degree, seed=2)
        assert graph.max_degree() <= max_degree

    def test_degree_zero_is_edgeless(self):
        assert gen.random_bounded_degree_graph(10, 0, seed=1).num_edges == 0

    def test_negative_cap_rejected(self):
        with pytest.raises(GraphError):
            gen.random_bounded_degree_graph(10, -1)

    def test_reaches_reasonable_density(self):
        graph = gen.random_bounded_degree_graph(60, 6, seed=4)
        # At least half the target edges should be placed.
        assert graph.num_edges >= 60 * 6 // 4


class TestStructured:
    def test_path(self):
        graph = gen.path_graph(5)
        assert graph.num_edges == 4
        assert graph.degree(0) == 1 and graph.degree(2) == 2

    def test_path_trivial_sizes(self):
        assert gen.path_graph(0).num_edges == 0
        assert gen.path_graph(1).num_edges == 0

    def test_cycle(self):
        graph = gen.cycle_graph(5)
        assert graph.num_edges == 5
        assert all(graph.degree(v) == 2 for v in graph.nodes)

    def test_cycle_too_small_rejected(self):
        with pytest.raises(GraphError):
            gen.cycle_graph(2)

    def test_grid(self):
        graph = gen.grid_graph(3, 4)
        assert graph.num_nodes == 12
        assert graph.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical
        assert graph.degree(0) == 2  # corner

    def test_star(self):
        graph = gen.star_graph(6)
        assert graph.degree(0) == 5
        assert all(graph.degree(v) == 1 for v in range(1, 6))

    def test_complete(self):
        graph = gen.complete_graph(6)
        assert graph.num_edges == 15
        assert graph.max_degree() == 5

    def test_complete_bipartite(self):
        graph = gen.complete_bipartite_graph(2, 3)
        assert graph.num_edges == 6
        assert graph.is_independent_set([0, 1])
        assert graph.is_independent_set([2, 3, 4])

    def test_empty(self):
        graph = gen.empty_graph(4)
        assert graph.num_edges == 0
        assert graph.is_maximal_independent_set(range(4))

    def test_caterpillar(self):
        graph = gen.caterpillar_graph(3, 2)
        assert graph.num_nodes == 3 + 6
        assert graph.num_edges == 2 + 6
        assert graph.degree(1) == 4  # middle spine: 2 spine + 2 legs

    def test_tree_is_acyclic_connected(self):
        graph = gen.random_tree(30, seed=5)
        assert graph.num_edges == 29
        assert len(graph.connected_components()) == 1

    def test_tree_trivial(self):
        assert gen.random_tree(1, seed=0).num_edges == 0


class TestMatchingFamilies:
    def test_disjoint_edges(self):
        graph = gen.disjoint_edges_graph(4)
        assert graph.num_nodes == 8
        assert all(graph.degree(v) == 1 for v in graph.nodes)

    def test_hard_instance_structure(self):
        graph = gen.matching_plus_isolated_graph(16)
        assert graph.num_nodes == 16
        assert graph.num_edges == 4
        isolated = [v for v in graph.nodes if graph.degree(v) == 0]
        assert len(isolated) == 8

    def test_hard_instance_requires_multiple_of_four(self):
        with pytest.raises(GraphError):
            gen.matching_plus_isolated_graph(10)


class TestRegularish:
    def test_degree_cap(self):
        graph = gen.random_regularish_graph(40, 4, seed=3)
        assert graph.max_degree() <= 4
        assert graph.num_edges > 0

    def test_rejects_degree_at_least_n(self):
        with pytest.raises(GraphError):
            gen.random_regularish_graph(4, 4)

    def test_rejects_negative_degree(self):
        with pytest.raises(GraphError):
            gen.random_regularish_graph(4, -1)

    def test_deterministic(self):
        assert gen.random_regularish_graph(20, 3, seed=1) == gen.random_regularish_graph(
            20, 3, seed=1
        )
