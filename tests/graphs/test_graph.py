"""Unit tests for the core Graph type."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs import Graph


def edges_strategy(max_nodes=12):
    """Random (num_nodes, edge list) pairs with in-range endpoints."""
    return st.integers(min_value=1, max_value=max_nodes).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(
                st.tuples(
                    st.integers(0, n - 1), st.integers(0, n - 1)
                ).filter(lambda e: e[0] != e[1]),
                max_size=30,
            ),
        )
    )


class TestConstruction:
    def test_empty(self):
        graph = Graph(0)
        assert graph.num_nodes == 0
        assert graph.num_edges == 0
        assert list(graph.nodes) == []

    def test_basic(self):
        graph = Graph(3, [(0, 1), (1, 2)])
        assert graph.num_nodes == 3
        assert graph.num_edges == 2
        assert graph.neighbors(1) == (0, 2)

    def test_duplicate_edges_collapse(self):
        graph = Graph(3, [(0, 1), (1, 0), (0, 1)])
        assert graph.num_edges == 1
        assert graph.degree(0) == 1

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            Graph(2, [(1, 1)])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(GraphError):
            Graph(2, [(0, 2)])

    def test_negative_node_count_rejected(self):
        with pytest.raises(GraphError):
            Graph(-1)

    def test_edges_normalized_and_sorted(self):
        graph = Graph(4, [(3, 1), (2, 0)])
        assert graph.edges == ((0, 2), (1, 3))

    def test_from_adjacency_symmetrizes(self):
        graph = Graph.from_adjacency([[1], [], [1]])
        assert graph.has_edge(0, 1)
        assert graph.has_edge(1, 2)
        assert graph.num_edges == 2


class TestAccessors:
    def test_neighbor_set_membership(self):
        graph = Graph(4, [(0, 1), (0, 2)])
        assert graph.neighbor_set(0) == frozenset({1, 2})
        assert 3 not in graph.neighbor_set(0)

    def test_degree_and_max_degree(self):
        graph = Graph(4, [(0, 1), (0, 2), (0, 3)])
        assert graph.degree(0) == 3
        assert graph.degree(3) == 1
        assert graph.max_degree() == 3

    def test_max_degree_empty(self):
        assert Graph(0).max_degree() == 0
        assert Graph(5).max_degree() == 0

    def test_has_edge_symmetric(self):
        graph = Graph(3, [(0, 2)])
        assert graph.has_edge(0, 2) and graph.has_edge(2, 0)
        assert not graph.has_edge(0, 1)

    def test_bad_node_lookup_raises(self):
        graph = Graph(2, [(0, 1)])
        with pytest.raises(GraphError):
            graph.neighbors(2)
        with pytest.raises(GraphError):
            graph.degree(-1)

    def test_len_iter_contains(self):
        graph = Graph(3)
        assert len(graph) == 3
        assert list(graph) == [0, 1, 2]
        assert 2 in graph and 3 not in graph and "x" not in graph

    def test_equality_and_hash(self):
        a = Graph(3, [(0, 1)])
        b = Graph(3, [(1, 0)])
        c = Graph(3, [(0, 2)])
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert a != "not a graph"

    def test_closed_neighborhood(self):
        graph = Graph(4, [(0, 1), (1, 2)])
        assert graph.closed_neighborhood(1) == frozenset({0, 1, 2})


class TestSetQueries:
    def test_independent_set_detection(self):
        graph = Graph(4, [(0, 1), (2, 3)])
        assert graph.is_independent_set([0, 2])
        assert not graph.is_independent_set([0, 1])
        assert graph.is_independent_set([])

    def test_dominating_set_detection(self):
        graph = Graph(4, [(0, 1), (1, 2), (2, 3)])
        assert graph.is_dominating_set([1, 3])
        assert not graph.is_dominating_set([0])

    def test_maximal_independent_set(self):
        graph = Graph(4, [(0, 1), (1, 2), (2, 3)])
        assert graph.is_maximal_independent_set([0, 2])
        assert graph.is_maximal_independent_set([1, 3])
        assert not graph.is_maximal_independent_set([0])  # not dominating
        assert not graph.is_maximal_independent_set([0, 1, 3])  # not independent

    def test_isolated_node_must_be_in_mis(self):
        graph = Graph(3, [(0, 1)])
        assert not graph.is_maximal_independent_set([0])
        assert graph.is_maximal_independent_set([0, 2])

    def test_edges_within(self):
        graph = Graph(5, [(0, 1), (1, 2), (3, 4)])
        assert graph.edges_within([0, 1, 2]) == [(0, 1), (1, 2)]
        assert graph.edges_within([0, 2, 3]) == []

    def test_neighborhood_of_set(self):
        graph = Graph(5, [(0, 1), (1, 2), (3, 4)])
        assert graph.neighborhood_of_set([1]) == {0, 2}
        assert graph.neighborhood_of_set([0, 3]) == {1, 4}


class TestDerivedGraphs:
    def test_induced_subgraph(self):
        graph = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        sub, index = graph.induced_subgraph([1, 2, 4])
        assert sub.num_nodes == 3
        assert index == {1: 0, 2: 1, 4: 2}
        assert sub.edges == ((0, 1),)

    def test_induced_subgraph_degrees(self):
        graph = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        degrees = graph.induced_subgraph_degrees([0, 1, 2])
        assert degrees == {0: 1, 1: 2, 2: 1}

    def test_connected_components(self):
        graph = Graph(6, [(0, 1), (1, 2), (4, 5)])
        components = graph.connected_components()
        assert sorted(map(tuple, components)) == [(0, 1, 2), (3,), (4, 5)]

    def test_relabeled_isomorphic(self):
        graph = Graph(3, [(0, 1)])
        relabeled = graph.relabeled([2, 0, 1])
        assert relabeled.has_edge(2, 0)
        assert relabeled.num_edges == 1

    def test_relabeled_rejects_non_bijection(self):
        graph = Graph(3, [(0, 1)])
        with pytest.raises(GraphError):
            graph.relabeled([0, 0, 1])


class TestPropertyBased:
    @given(edges_strategy())
    @settings(max_examples=50, deadline=None)
    def test_degree_sum_is_twice_edges(self, data):
        n, edges = data
        graph = Graph(n, edges)
        assert sum(graph.degree(v) for v in graph.nodes) == 2 * graph.num_edges

    @given(edges_strategy())
    @settings(max_examples=50, deadline=None)
    def test_adjacency_symmetric(self, data):
        n, edges = data
        graph = Graph(n, edges)
        for u in graph.nodes:
            for v in graph.neighbors(u):
                assert u in graph.neighbor_set(v)

    @given(edges_strategy())
    @settings(max_examples=50, deadline=None)
    def test_components_partition_nodes(self, data):
        n, edges = data
        graph = Graph(n, edges)
        components = graph.connected_components()
        flattened = sorted(node for component in components for node in component)
        assert flattened == list(range(n))

    @given(edges_strategy())
    @settings(max_examples=50, deadline=None)
    def test_full_node_set_is_dominating(self, data):
        n, edges = data
        graph = Graph(n, edges)
        assert graph.is_dominating_set(range(n))
