"""Round-trip and error tests for graph serialization."""

import pytest

from repro.errors import GraphError
from repro.graphs import Graph, gnp_random_graph
from repro.graphs.io import (
    from_edge_list_text,
    from_json,
    from_networkx,
    load_edge_list,
    load_json,
    save_edge_list,
    save_json,
    to_edge_list_text,
    to_json,
    to_networkx,
)


@pytest.fixture
def sample_graph():
    return gnp_random_graph(20, 0.2, seed=3)


class TestEdgeListFormat:
    def test_roundtrip(self, sample_graph):
        text = to_edge_list_text(sample_graph)
        assert from_edge_list_text(text) == sample_graph

    def test_file_roundtrip(self, sample_graph, tmp_path):
        path = tmp_path / "g.edges"
        save_edge_list(sample_graph, path)
        assert load_edge_list(path) == sample_graph

    def test_header_line(self, sample_graph):
        first_line = to_edge_list_text(sample_graph).splitlines()[0]
        assert first_line == f"{sample_graph.num_nodes} {sample_graph.num_edges}"

    def test_comments_and_blanks_ignored(self):
        text = "# comment\n3 1\n\n0 2\n"
        graph = from_edge_list_text(text)
        assert graph.has_edge(0, 2)

    def test_empty_input_rejected(self):
        with pytest.raises(GraphError):
            from_edge_list_text("")

    def test_bad_header_rejected(self):
        with pytest.raises(GraphError):
            from_edge_list_text("3\n")

    def test_count_mismatch_rejected(self):
        with pytest.raises(GraphError):
            from_edge_list_text("3 2\n0 1\n")

    def test_bad_edge_line_rejected(self):
        with pytest.raises(GraphError):
            from_edge_list_text("3 1\n0 1 2\n")


class TestJsonFormat:
    def test_roundtrip(self, sample_graph):
        assert from_json(to_json(sample_graph)) == sample_graph

    def test_name_preserved(self, sample_graph):
        assert from_json(to_json(sample_graph)).name == sample_graph.name

    def test_file_roundtrip(self, sample_graph, tmp_path):
        path = tmp_path / "g.json"
        save_json(sample_graph, path)
        assert load_json(path) == sample_graph

    def test_malformed_rejected(self):
        with pytest.raises(GraphError):
            from_json('{"edges": []}')


class TestNetworkxBridge:
    def test_roundtrip(self, sample_graph):
        pytest.importorskip("networkx")
        nx_graph = to_networkx(sample_graph)
        assert from_networkx(nx_graph) == sample_graph

    def test_relabels_arbitrary_nodes(self):
        nx = pytest.importorskip("networkx")
        nx_graph = nx.Graph()
        nx_graph.add_edge("a", "b")
        nx_graph.add_node("c")
        graph = from_networkx(nx_graph)
        assert graph.num_nodes == 3
        assert graph.num_edges == 1
