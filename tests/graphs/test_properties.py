"""Tests for graph property analyzers and the greedy MIS reference."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    Graph,
    complete_graph,
    degree_stats,
    domination_violations,
    empty_graph,
    gnp_random_graph,
    greedy_mis,
    independence_violations,
    is_valid_mis,
    mis_size_bounds,
    path_graph,
    star_graph,
)


class TestDegreeStats:
    def test_empty_graph(self):
        stats = degree_stats(Graph(0))
        assert stats.minimum == stats.maximum == 0

    def test_star(self):
        stats = degree_stats(star_graph(5))
        assert stats.minimum == 1
        assert stats.maximum == 4
        assert stats.mean == pytest.approx(8 / 5)

    def test_median_even_count(self):
        stats = degree_stats(path_graph(4))  # degrees 1,2,2,1
        assert stats.median == pytest.approx(1.5)

    def test_str_renders(self):
        assert "max=4" in str(degree_stats(star_graph(5)))


class TestViolations:
    def test_independence_violations_found(self):
        graph = path_graph(4)
        assert independence_violations(graph, [0, 1, 3]) == [(0, 1)]

    def test_independence_clean(self):
        graph = path_graph(4)
        assert independence_violations(graph, [0, 2]) == []

    def test_domination_violations_found(self):
        graph = path_graph(5)
        assert domination_violations(graph, [0]) == [2, 3, 4]

    def test_domination_clean(self):
        graph = path_graph(5)
        assert domination_violations(graph, [1, 3]) == []

    def test_is_valid_mis(self):
        graph = path_graph(5)
        assert is_valid_mis(graph, [0, 2, 4])
        assert not is_valid_mis(graph, [0, 1])
        assert not is_valid_mis(graph, [0])


class TestGreedyMIS:
    def test_natural_order_on_path(self):
        assert greedy_mis(path_graph(5)) == {0, 2, 4}

    def test_respects_given_order(self):
        assert greedy_mis(path_graph(3), order=[1, 0, 2]) == {1}

    def test_clique_picks_single_node(self):
        assert len(greedy_mis(complete_graph(8))) == 1

    def test_empty_graph_takes_all(self):
        assert greedy_mis(empty_graph(5)) == {0, 1, 2, 3, 4}

    def test_random_order_still_valid(self):
        graph = gnp_random_graph(40, 0.15, seed=2)
        mis = greedy_mis(graph, rng=random.Random(4))
        assert is_valid_mis(graph, mis)

    @given(st.integers(2, 30), st.floats(0.05, 0.9), st.integers(0, 10))
    @settings(max_examples=40, deadline=None)
    def test_always_produces_valid_mis(self, n, p, seed):
        graph = gnp_random_graph(n, p, seed=seed)
        mis = greedy_mis(graph, rng=random.Random(seed))
        assert is_valid_mis(graph, mis)


class TestSizeBounds:
    def test_bounds_bracket_greedy(self):
        graph = gnp_random_graph(50, 0.1, seed=1)
        lower, upper = mis_size_bounds(graph)
        size = len(greedy_mis(graph))
        assert lower <= size <= upper

    def test_empty_graph_bounds(self):
        assert mis_size_bounds(empty_graph(7)) == (7, 7)

    def test_zero_node_graph(self):
        assert mis_size_bounds(Graph(0)) == (0, 0)

    def test_clique_lower_bound_is_one(self):
        lower, _ = mis_size_bounds(complete_graph(9))
        assert lower == 1
