"""Tests for the claims report: repro-claims/1 JSON and markdown."""

import json

import pytest

from repro.claims.report import (
    CLAIMS_SCHEMA,
    build_document,
    load_claims_json,
    render_markdown,
    write_claims_json,
)
from repro.claims.spec import (
    Claim,
    Measurements,
    PaperRef,
    PredicateResult,
    SweepWorkload,
)
from repro.claims.verdict import ClaimVerdict
from repro.claims.verify import VerificationResult
from repro.errors import ConfigurationError


def fitted_result(name="cd-energy-exponent", passed=True):
    return PredicateResult(
        name=name,
        kind="exponent-band",
        passed=passed,
        decided=True,
        detail="fit detail",
        data={
            "exponent": 1.04,
            "ci_low": 0.90,
            "ci_high": 1.18,
            "model": "log n",
            "band": [0.3, 1.7],
        },
    )


def synthetic_result(verdict="reproduced"):
    workload = SweepWorkload(protocols=("cd-mis", "naive-cd-luby"), sizes=(16, 64))
    claim = Claim(
        claim_id="thm2-cd-energy",
        title="Algorithm 1 energy",
        ref=PaperRef("Theorem 2", "§3", ("E1", "E2"), "O(log n) energy"),
        workload=workload,
        strict=(),
        notes="a note for the report",
    )
    measurements = Measurements()
    for protocol, scale in (("cd-mis", 1.0), ("naive-cd-luby", 2.0)):
        measurements.models[protocol] = "cd"
        for n, energy in ((16, 10.0), (64, 20.0)):
            measurements.add_sweep_values(
                protocol,
                n,
                {
                    "max_energy": [scale * energy, scale * energy + 2.0],
                    "mean_energy": [scale * energy / 2.0],
                    "rounds": [30.0],
                },
            )
    measurements.trials_used = 8
    claim_verdict = ClaimVerdict(
        claim_id=claim.claim_id,
        verdict=verdict,
        strict=(fitted_result(),),
        shape=(),
        trials_used=8,
    )
    return VerificationResult(
        tier="quick",
        profile="practical",
        verdicts=[claim_verdict],
        claims={claim.claim_id: claim},
        measurements={claim.claim_id: measurements},
    )


class TestBuildDocument:
    def test_document_structure(self):
        document = build_document(synthetic_result())
        assert document["schema"] == CLAIMS_SCHEMA
        assert document["tier"] == "quick"
        assert document["summary"] == {"reproduced": 1}
        assert document["total_trials"] == 8
        record = document["claims"][0]
        assert record["claim_id"] == "thm2-cd-energy"
        assert record["statement"] == "Theorem 2"
        assert record["experiments"] == ["E1", "E2"]
        assert record["workload"] == "SweepWorkload"

    def test_series_embeds_sweep_summaries(self):
        document = build_document(synthetic_result())
        series = document["series"]["cd-mis"]
        assert series["sizes"] == [16, 64]
        assert series["trials"] == [2, 2]
        assert series["max_energy_mean"][0] == pytest.approx(11.0)
        assert series["max_energy_max"][1] == pytest.approx(22.0)


class TestJsonRoundTrip:
    def test_write_then_load(self, tmp_path):
        document = build_document(synthetic_result())
        path = write_claims_json(document, tmp_path / "out" / "CLAIMS.json")
        assert path.exists()  # parent dirs created
        loaded = load_claims_json(path)
        assert loaded == json.loads(json.dumps(document))

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no claims document"):
            load_claims_json(tmp_path / "absent.json")

    def test_malformed_json_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="malformed"):
            load_claims_json(path)

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"schema": "repro-claims/0"}))
        with pytest.raises(ConfigurationError, match="unsupported"):
            load_claims_json(path)

    def test_non_object_document_rejected(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        with pytest.raises(ConfigurationError, match="unsupported"):
            load_claims_json(path)


class TestRenderMarkdown:
    def test_reproduced_run_renders_tables(self):
        markdown = render_markdown(build_document(synthetic_result()))
        assert "# Claims verification report" in markdown
        assert "✅ reproduced" in markdown
        assert "## E1 — headline complexity table" in markdown
        assert "| cd-mis | cd | 64 |" in markdown
        # E2 regenerates from the embedded series with the ratio column.
        assert "naive-cd-luby maxE" in markdown
        # The exponent note reads predicate data straight from the
        # document — the report works offline from CLAIMS.json.
        assert "bootstrap CI [0.90, 1.18]" in markdown
        assert "Non-reproduced details" not in markdown

    def test_failing_claim_gets_details_section(self):
        markdown = render_markdown(
            build_document(synthetic_result(verdict="shape-only"))
        )
        assert "🟡 shape-only" in markdown
        assert "## Non-reproduced details" in markdown
        assert "> a note for the report" in markdown

    def test_empty_document_renders_placeholders(self):
        document = {
            "schema": CLAIMS_SCHEMA,
            "tier": "quick",
            "profile": "practical",
            "summary": {},
            "total_trials": 0,
            "claims": [],
            "series": {},
        }
        markdown = render_markdown(document)
        assert "_no sweep series in this document_" in markdown
        assert "_no CD sweep series in this document_" in markdown
