"""Tests for the registered claims: structure and tier invariants."""

import pytest

from repro.claims.registry import TIERS, registered_claims
from repro.claims.spec import (
    BackoffWorkload,
    BudgetWorkload,
    ChurnWorkload,
    HarnessWorkload,
    PairedWorkload,
    RateWorkload,
    SweepWorkload,
)
from repro.constants import ConstantsProfile
from repro.errors import ConfigurationError

EXPECTED_IDS = {
    "thm2-cd-energy",
    "thm2-cd-rounds",
    "thm2-beeping-equivalence",
    "thm1-energy-lower-bound",
    "lemma8-backoff-energy",
    "lemma9-backoff-delivery",
    "thm10-nocd-energy",
    "thm10-nocd-rounds",
    "thm2-thm10-failure-rate",
    "lemma5-residual-shrinkage",
    "sec5-energy-classes",
    "lemma14-15-competition",
    "churn-repair-cost",
    "churn-restabilize",
    "channel_sweep",
}


class TestRegistryStructure:
    @pytest.mark.parametrize("tier", TIERS)
    def test_all_headline_claims_registered(self, tier):
        registry = registered_claims(tier)
        assert set(registry) == EXPECTED_IDS

    @pytest.mark.parametrize("tier", TIERS)
    def test_ids_match_keys_and_every_claim_has_strict(self, tier):
        for claim_id, claim in registered_claims(tier).items():
            assert claim.claim_id == claim_id
            assert claim.strict, f"{claim_id} has no strict predicates"
            assert claim.ref.experiments, f"{claim_id} names no experiment"
            assert all(
                e.startswith("E") or e in ("CHURN", "CHANNELS")
                for e in claim.ref.experiments
            )

    def test_unknown_tier_rejected(self):
        with pytest.raises(ConfigurationError):
            registered_claims("nightly")

    def test_predicate_names_unique_within_claim(self):
        for claim in registered_claims("full").values():
            names = [p.name for p in claim.predicates()]
            assert len(names) == len(set(names)), claim.claim_id


class TestWorkloadSharing:
    def test_theorem2_sweep_claims_share_a_workload(self):
        registry = registered_claims("quick")
        assert (
            registry["thm2-cd-energy"].workload
            == registry["thm2-cd-rounds"].workload
        )

    def test_theorem10_sweep_claims_share_a_workload(self):
        registry = registered_claims("quick")
        assert (
            registry["thm10-nocd-energy"].workload
            == registry["thm10-nocd-rounds"].workload
        )

    def test_backoff_lemmas_share_a_workload(self):
        registry = registered_claims("quick")
        assert (
            registry["lemma8-backoff-energy"].workload
            == registry["lemma9-backoff-delivery"].workload
        )

    def test_workload_kinds(self):
        registry = registered_claims("quick")
        kinds = {
            "thm2-cd-energy": SweepWorkload,
            "thm2-beeping-equivalence": PairedWorkload,
            "thm1-energy-lower-bound": BudgetWorkload,
            "lemma8-backoff-energy": BackoffWorkload,
            "thm2-thm10-failure-rate": RateWorkload,
            "lemma5-residual-shrinkage": HarnessWorkload,
            "churn-repair-cost": ChurnWorkload,
        }
        for claim_id, workload_type in kinds.items():
            assert isinstance(registry[claim_id].workload, workload_type)


class TestTierScaling:
    def test_quick_tier_runs_less(self):
        quick = registered_claims("quick")
        full = registered_claims("full")
        quick_sweep = quick["thm2-cd-energy"].workload
        full_sweep = full["thm2-cd-energy"].workload
        assert max(quick_sweep.sizes) < max(full_sweep.sizes)
        assert quick_sweep.trials < full_sweep.trials
        quick_rate = quick["thm2-thm10-failure-rate"].workload
        full_rate = full["thm2-thm10-failure-rate"].workload
        assert quick_rate.trials < full_rate.trials

    def test_workloads_hashable_and_frozen(self):
        registry = registered_claims("quick")
        for claim in registry.values():
            hash(claim.workload)  # grouping relies on hashability
            with pytest.raises(Exception):
                claim.workload.__setattr__("trials", 0)

    def test_constants_profile_accepted(self):
        registry = registered_claims("quick", ConstantsProfile.fast())
        assert set(registry) == EXPECTED_IDS
