"""Tests for the verdict fold: predicate results -> one of four verdicts."""

import pytest

from repro.claims.spec import (
    Claim,
    EvalContext,
    Measurements,
    PaperRef,
    PredicateResult,
    ScalarBound,
    SweepWorkload,
)
from repro.claims.verdict import (
    VERDICTS,
    ClaimVerdict,
    decide_verdict,
    evaluate_claim,
)


def result(passed, decided, name="p"):
    return PredicateResult(
        name=name, kind="test", passed=passed, decided=decided, detail=""
    )


OK = result(True, True)
FAIL = result(False, True)
UNDECIDED = result(False, False)


class TestDecideVerdict:
    def test_all_strict_decided_pass(self):
        assert decide_verdict([OK, OK], []) == "reproduced"
        assert decide_verdict([OK], [FAIL]) == "reproduced"  # shape moot

    def test_strict_fail_with_shape_fallback(self):
        assert decide_verdict([FAIL, OK], [OK]) == "shape-only"

    def test_strict_fail_without_fallback(self):
        assert decide_verdict([FAIL], []) == "not-reproduced"
        assert decide_verdict([FAIL], [FAIL]) == "not-reproduced"
        assert decide_verdict([FAIL], [OK, FAIL]) == "not-reproduced"

    def test_strict_fail_shape_undecided(self):
        assert decide_verdict([FAIL], [UNDECIDED]) == "inconclusive"

    def test_strict_undecided_falls_back_to_shape(self):
        assert decide_verdict([UNDECIDED], [OK]) == "shape-only"
        assert decide_verdict([UNDECIDED], [UNDECIDED]) == "inconclusive"
        assert decide_verdict([UNDECIDED], []) == "inconclusive"

    def test_no_strict_predicates_never_reproduced(self):
        assert decide_verdict([], [OK]) == "shape-only"
        assert decide_verdict([], []) == "inconclusive"

    def test_every_output_is_a_known_verdict(self):
        for strict in ([OK], [FAIL], [UNDECIDED], []):
            for shape in ([OK], [FAIL], [UNDECIDED], []):
                assert decide_verdict(strict, shape) in VERDICTS


class TestClaimVerdict:
    def test_converged_requires_all_decided(self):
        verdict = ClaimVerdict(
            claim_id="c", verdict="reproduced",
            strict=(OK,), shape=(UNDECIDED,),
        )
        assert not verdict.converged
        verdict = ClaimVerdict(
            claim_id="c", verdict="reproduced", strict=(OK,), shape=(FAIL,)
        )
        assert verdict.converged

    def test_to_record_shape(self):
        record = ClaimVerdict(
            claim_id="c", verdict="reproduced",
            strict=(OK,), shape=(), trials_used=7,
        ).to_record()
        assert record["claim_id"] == "c"
        assert record["trials_used"] == 7
        assert record["strict"][0]["passed"] is True
        assert record["shape"] == []


class TestEvaluateClaim:
    def make_claim(self, strict_bound, shape_bound):
        ref = PaperRef("Thm", "§1", ("E1",), "s")
        return Claim(
            claim_id="c",
            title="t",
            ref=ref,
            workload=SweepWorkload(protocols=("alg",), sizes=(16, 32)),
            strict=(ScalarBound(name="strict", key="x", bound=strict_bound),),
            shape=(ScalarBound(name="shape", key="x", bound=shape_bound),),
        )

    def test_wires_measurements_through(self):
        measurements = Measurements()
        measurements.scalars["x"] = 1.5
        measurements.trials_used = 9
        verdict = evaluate_claim(
            self.make_claim(1.0, 2.0), measurements, EvalContext()
        )
        assert verdict.verdict == "shape-only"
        assert verdict.trials_used == 9
        assert not verdict.budget_exhausted

    def test_budget_exhausted_propagates(self):
        measurements = Measurements()
        measurements.scalars["x"] = 0.5
        verdict = evaluate_claim(
            self.make_claim(1.0, 2.0),
            measurements,
            EvalContext(),
            budget_exhausted=True,
        )
        assert verdict.verdict == "reproduced"
        assert verdict.budget_exhausted
