"""Tests for the adaptive sampler: batching, seed discipline, budgets."""

import pytest

from repro.claims.sampler import (
    SamplerConfig,
    _batch_range,
    _cell_seeds,
    collect_measurements,
)
from repro.claims.spec import (
    CeilingPredicate,
    Claim,
    EvalContext,
    HarnessWorkload,
    PairedBitIdentity,
    PaperRef,
    PairedWorkload,
    ScalarBound,
    SweepWorkload,
)
from repro.constants import ConstantsProfile
from repro.errors import ConfigurationError
from repro.exec.cache import ResultCache
from repro.obs.registry import Registry, set_registry

REF = PaperRef("Thm", "§1", ("E1",), "s")
FAST = ConstantsProfile.fast()

# A strict predicate that is decided as soon as any sweep data exists:
# the sampler converges after the first batch.
ALWAYS_DECIDED = CeilingPredicate(
    name="huge-cap",
    protocol="cd-mis",
    metric="max_energy",
    ceiling=lambda n, constants: 1e9,
)


def config(**overrides):
    settings = {"constants": FAST, "jobs": 1}
    settings.update(overrides)
    return SamplerConfig(**settings)


def sweep_claim(workload, strict=None):
    return Claim(
        claim_id="c",
        title="t",
        ref=REF,
        workload=workload,
        strict=strict or (ScalarBound(name="undecidable", key="no", bound=1),),
    )


class TestBatchRange:
    def test_first_batch_is_initial_trials(self):
        assert _batch_range(3, 2, 0) == (0, 3)

    def test_later_batches_are_contiguous(self):
        assert _batch_range(3, 2, 1) == (3, 5)
        assert _batch_range(3, 2, 2) == (5, 7)

    def test_windows_tile_without_gaps(self):
        stops = [_batch_range(4, 3, i) for i in range(5)]
        for (first_start, first_stop), (next_start, _) in zip(stops, stops[1:]):
            assert first_stop == next_start
        assert stops[0][0] == 0


class TestCellSeeds:
    def test_seed_depends_only_on_label_and_index(self):
        # Seeds for [0, 5) must equal seeds for [0, 3) + [3, 5): batch
        # boundaries never shift a trial's seed (cache resume is free).
        settings = config(base_seed=42)
        whole = _cell_seeds(settings, "cell", 0, 5)
        split = _cell_seeds(settings, "cell", 0, 3) + _cell_seeds(
            settings, "cell", 3, 5
        )
        assert whole == split

    def test_distinct_labels_decorrelate(self):
        settings = config(base_seed=42)
        assert _cell_seeds(settings, "a", 0, 3) != _cell_seeds(
            settings, "b", 0, 3
        )

    def test_base_seed_changes_everything(self):
        assert _cell_seeds(config(base_seed=1), "a", 0, 3) != _cell_seeds(
            config(base_seed=2), "a", 0, 3
        )


class TestCollectSweep:
    WORKLOAD = SweepWorkload(
        protocols=("cd-mis",), sizes=(16,), trials=2, batch=1, max_batches=2
    )

    def test_measurements_structure(self):
        claim = sweep_claim(self.WORKLOAD)
        measurements, exhausted = collect_measurements(
            self.WORKLOAD, [claim], EvalContext(constants=FAST), config()
        )
        samples = measurements.sweep_samples("cd-mis", "max_energy")
        assert list(samples) == [16]
        # ScalarBound on a missing key never decides: the sampler runs
        # every batch (2 + 1 trials) and reports the budget exhausted.
        assert len(samples[16]) == 3
        assert exhausted
        assert measurements.trials_used == 3
        assert measurements.models["cd-mis"] == "cd"

    def test_converges_after_first_batch_when_decided(self):
        claim = sweep_claim(self.WORKLOAD, strict=(ALWAYS_DECIDED,))
        measurements, exhausted = collect_measurements(
            self.WORKLOAD, [claim], EvalContext(constants=FAST), config()
        )
        assert not exhausted
        samples = measurements.sweep_samples("cd-mis", "max_energy")
        assert len(samples[16]) == 2  # first batch only

    def test_deterministic_across_runs(self):
        claim = sweep_claim(self.WORKLOAD)
        first, _ = collect_measurements(
            self.WORKLOAD, [claim], EvalContext(constants=FAST), config()
        )
        second, _ = collect_measurements(
            self.WORKLOAD, [claim], EvalContext(constants=FAST), config()
        )
        assert first.sweeps == second.sweeps

    def test_budget_stops_batching(self):
        claim = sweep_claim(self.WORKLOAD)
        measurements, exhausted = collect_measurements(
            self.WORKLOAD,
            [claim],
            EvalContext(constants=FAST),
            config(budget=1),
        )
        assert exhausted
        samples = measurements.sweep_samples("cd-mis", "max_energy")
        assert len(samples[16]) == 2  # batch 0 ran; budget blocked batch 1

    def test_cache_serves_second_run(self, tmp_path):
        claim = sweep_claim(self.WORKLOAD, strict=(ALWAYS_DECIDED,))
        cache = ResultCache(tmp_path / "cache")
        collect_measurements(
            self.WORKLOAD,
            [claim],
            EvalContext(constants=FAST),
            config(cache=cache),
        )
        assert cache.stats.writes > 0
        resumed = ResultCache(tmp_path / "cache")
        second, _ = collect_measurements(
            self.WORKLOAD,
            [claim],
            EvalContext(constants=FAST),
            config(cache=resumed),
        )
        assert resumed.stats.hits == resumed.stats.lookups
        assert second.sweep_samples("cd-mis", "max_energy")[16]

    def test_counters_incremented(self):
        registry = Registry()
        previous = set_registry(registry)
        try:
            claim = sweep_claim(self.WORKLOAD, strict=(ALWAYS_DECIDED,))
            collect_measurements(
                self.WORKLOAD, [claim], EvalContext(constants=FAST), config()
            )
        finally:
            set_registry(previous)
        counters = registry.counter_values()
        assert counters["claims.batches"] == 1
        assert counters["claims.trials"] == 2
        assert counters["claims.converged"] == 1


class TestCollectPaired:
    WORKLOAD = PairedWorkload(
        protocol_a="cd-mis",
        model_a="cd",
        protocol_b="beeping-mis",
        model_b="beep",
        n=16,
        trials=2,
        batch=1,
        max_batches=1,
    )

    def test_pairs_share_seeds_and_agree(self):
        claim = Claim(
            claim_id="pair",
            title="t",
            ref=REF,
            workload=self.WORKLOAD,
            strict=(PairedBitIdentity(name="bit", min_pairs=2),),
        )
        measurements, exhausted = collect_measurements(
            self.WORKLOAD, [claim], EvalContext(constants=FAST), config()
        )
        assert not exhausted
        assert len(measurements.paired) == 2
        for pair in measurements.paired:
            assert pair["a"] == pair["b"]  # beeping variant is bit-identical
        assert measurements.trials_used == 4  # two protocols per pair


class TestCollectHarness:
    def test_unknown_harness_rejected(self):
        workload = HarnessWorkload(harness="nonsense", n=16)
        claim = sweep_claim(workload)
        with pytest.raises(ConfigurationError):
            collect_measurements(
                workload, [claim], EvalContext(constants=FAST), config()
            )

    def test_residual_harness_is_one_shot(self):
        workload = HarnessWorkload(harness="residual", n=16, graphs=1, seeds=1)
        claim = sweep_claim(workload)  # undecidable -> would loop if it could
        measurements, exhausted = collect_measurements(
            workload, [claim], EvalContext(constants=FAST), config()
        )
        assert exhausted  # nothing more to offer, predicate still open
        assert any(
            key.startswith("residual/") for key in measurements.scalars
        )


class TestCollectorDispatch:
    def test_unknown_workload_type_rejected(self):
        with pytest.raises(ConfigurationError):
            collect_measurements(
                object(), [], EvalContext(constants=FAST), config()
            )
