"""Large-n sweep cells: cache identity and exponent-band ingestion.

The million-node work extends the full-tier claims sweeps by a decade
of n and routes those cells through the batch engine's phase-based
path.  Three contracts keep that extension honest:

* existing cells keep their exact trial keys (pinned goldens below), so
  every previously-cached trial stays valid;
* a large-n cell is bit-for-bit reproducible *through the cache* — a
  re-run is served entirely from cached records and produces identical
  summaries;
* the exponent-band fits accept the new sizes alongside the old ones
  without the extra decade flipping a verdict that the old sizes
  already decided.
"""

import pytest

pytest.importorskip("numpy")

from repro.analysis.runner import run_trials
from repro.claims.registry import registered_claims
from repro.claims.spec import EvalContext, ExponentBand, Measurements
from repro.constants import ConstantsProfile
from repro.core.cd_mis import CDMISProtocol
from repro.exec.cache import ResultCache, trial_key
from repro.graphs import gnp_random_graph
from repro.radio.models import CD

PRACTICAL = CDMISProtocol(constants=ConstantsProfile.practical())

# Golden keys computed before the large-n work landed: the sparsify
# parameter must join the key payload ONLY when set, or every cache in
# the wild silently invalidates.
GOLDEN_SCALAR = (
    "34869c0a5641c0a03340bce678782f3350921bb6dd250f2d951031e96e601668"
)
GOLDEN_BATCH = (
    "c8f970f8bf97b0f0efac82ebed319c096f24f6210c8fc0aba2729431eac75de4"
)


def test_existing_trial_keys_unchanged():
    assert (
        trial_key(
            protocol=PRACTICAL,
            model_name="cd",
            graph_spec="claims:gnp/n=64",
            seed=123,
        )
        == GOLDEN_SCALAR
    )
    assert (
        trial_key(
            protocol=PRACTICAL,
            model_name="cd",
            graph_spec="claims:gnp/n=64",
            seed=123,
            engine="batch",
        )
        == GOLDEN_BATCH
    )


def test_sparsify_tags_a_distinct_key():
    kwargs = dict(
        protocol=PRACTICAL,
        model_name="cd",
        graph_spec="claims:gnp/n=64",
        seed=123,
        engine="batch",
    )
    sparsified = trial_key(sparsify=8, **kwargs)
    assert sparsified not in (GOLDEN_SCALAR, GOLDEN_BATCH)
    assert sparsified != trial_key(sparsify=16, **kwargs)
    assert sparsified == trial_key(sparsify=8, **kwargs)  # deterministic


def test_large_n_cell_is_bit_identical_through_the_cache(tmp_path):
    """One auto-batched large-n cell, run twice against one cache.

    The second run must not recompute anything (hits == trials) and
    must reproduce every outcome exactly — the property that lets an
    interrupted large-n campaign resume for free.
    """
    protocol = CDMISProtocol(constants=ConstantsProfile.fast())
    n = 4096  # >= runner._LARGE_N_AUTO: auto-routes to the batch engine
    seeds = [101, 202, 303]
    cache = ResultCache(tmp_path / "cache")

    def battery():
        return run_trials(
            lambda seed: gnp_random_graph(n, 8.0 / (n - 1), seed=seed),
            protocol,
            CD,
            seeds,
            cache=cache,
            graph_spec=f"claims:gnp/n={n}",
        )

    first = battery()
    assert cache.stats.writes == len(seeds)
    hits_before = cache.stats.hits
    second = battery()
    assert cache.stats.hits - hits_before == len(seeds)
    assert cache.stats.writes == len(seeds)  # nothing recomputed

    for a, b in zip(first.outcomes, second.outcomes):
        assert a == b


def test_full_tier_sweep_gains_a_decade_quick_tier_unchanged():
    quick = registered_claims("quick")
    full = registered_claims("full")
    quick_sizes = quick["thm2-cd-energy"].workload.sizes
    full_sizes = full["thm2-cd-energy"].workload.sizes
    assert quick_sizes == (32, 64, 128)  # pinned: quick cells untouched
    assert (64, 128, 256, 512) == full_sizes[:4]  # old cells untouched
    # The extension spans at least one decade past the old ceiling.
    assert max(full_sizes) >= 10 * 512 / 2  # 8192 >= one decade over 512
    assert max(full_sizes) / 512 >= 10


def test_exponent_band_ingests_the_new_decade():
    """A fit over the old sizes stays decided-and-passed when the new
    large-n cells join, for data that genuinely follows the claimed
    polylog law (values ~ C log n with mild deterministic jitter)."""
    import math

    band = ExponentBand(
        name="cd-energy-exponent",
        protocol="cd-mis",
        metric="max_energy",
        low=0.3,
        high=1.7,
    )
    context = EvalContext(constants=ConstantsProfile.practical())

    def polylog_samples(n):
        return [
            3.0 * math.log2(n) * (1.0 + 0.05 * ((n * 31 + k * 17) % 7 - 3) / 7)
            for k in range(5)
        ]

    old_sizes = (64, 128, 256, 512)
    new_sizes = (4096, 8192)

    old_only = Measurements()
    for n in old_sizes:
        old_only.add_sweep_values("cd-mis", n, {"max_energy": polylog_samples(n)})
    before = band.evaluate(old_only, context)
    assert before.decided and before.passed

    extended = Measurements()
    for n in old_sizes + new_sizes:
        extended.add_sweep_values("cd-mis", n, {"max_energy": polylog_samples(n)})
    after = band.evaluate(extended, context)
    assert after.decided and after.passed
    # The extra decade tightens the fit rather than displacing it.
    assert abs(after.data["exponent"] - before.data["exponent"]) < 0.5
