"""Tests for claim specs: Measurements, predicates, decision semantics."""

import math

import pytest

from repro.claims.spec import (
    BackoffEnergyBounds,
    CeilingPredicate,
    CellRateBounds,
    Claim,
    EvalContext,
    ExponentBand,
    ExponentGap,
    LowerBoundConsistency,
    MeanDominance,
    Measurements,
    PairedBitIdentity,
    PaperRef,
    RateBound,
    ScalarBound,
    SweepWorkload,
)

REF = PaperRef(
    statement="Theorem T",
    section="§0",
    experiments=("E1",),
    summary="a test claim",
)


def polylog_measurements(exponent, protocols=("alg",), sizes=(16, 64, 256),
                         trials=4, noise=0.0):
    """Sweep data following ``(log2 n)^exponent`` with optional jitter."""
    measurements = Measurements()
    for protocol in protocols:
        for n in sizes:
            base = math.log2(n) ** exponent
            values = [
                base * (1.0 + noise * ((trial % 3) - 1))
                for trial in range(trials)
            ]
            measurements.add_sweep_values(
                protocol, n, {"max_energy": values, "rounds": values}
            )
    return measurements


class TestMeasurements:
    def test_sweep_samples_sorted_and_filtered(self):
        measurements = Measurements()
        measurements.add_sweep_values("alg", 64, {"max_energy": [2.0]})
        measurements.add_sweep_values("alg", 16, {"max_energy": [1.0]})
        measurements.add_sweep_values("alg", 32, {"rounds": [9.0]})
        samples = measurements.sweep_samples("alg", "max_energy")
        assert list(samples) == [16, 64]  # 32 has no max_energy values
        assert samples[16] == [1.0]

    def test_sweep_values_accumulate_across_batches(self):
        measurements = Measurements()
        measurements.add_sweep_values("alg", 16, {"max_energy": [1.0]})
        measurements.add_sweep_values("alg", 16, {"max_energy": [3.0]})
        sizes, means = measurements.sweep_means("alg", "max_energy")
        assert sizes == [16]
        assert means == [2.0]

    def test_cells_with_prefix(self):
        measurements = Measurements()
        measurements.cell("backoff/k=2")["k"] = 2
        measurements.cell("rate/cd-mis")["trials"] = 5
        under = measurements.cells_with_prefix("backoff/")
        assert list(under) == ["backoff/k=2"]


class TestExponentBand:
    def test_clean_power_law_inside_band(self):
        measurements = polylog_measurements(2.0)
        predicate = ExponentBand(
            name="band", protocol="alg", metric="max_energy",
            low=1.5, high=2.5,
        )
        result = predicate.evaluate(measurements, EvalContext())
        assert result.passed and result.decided
        assert result.data["model"] == "log^2 n"
        assert result.data["exponent"] == pytest.approx(2.0)

    def test_outside_band_decided_fail(self):
        measurements = polylog_measurements(3.0)
        predicate = ExponentBand(
            name="band", protocol="alg", metric="max_energy",
            low=0.5, high=1.5,
        )
        result = predicate.evaluate(measurements, EvalContext())
        assert not result.passed
        assert result.decided

    def test_no_data_is_undecided(self):
        predicate = ExponentBand(
            name="band", protocol="missing", metric="max_energy",
            low=0.0, high=9.0,
        )
        result = predicate.evaluate(Measurements(), EvalContext())
        assert not result.passed and not result.decided

    def test_narrow_ci_decides_even_straddling_edge(self):
        # Noise-free data gives a zero-width CI; a band edge through the
        # point estimate is still decided by decide_ci_width.
        measurements = polylog_measurements(2.0)
        predicate = ExponentBand(
            name="band", protocol="alg", metric="max_energy",
            low=2.0, high=4.0,
        )
        result = predicate.evaluate(measurements, EvalContext())
        assert result.decided and result.passed


class TestExponentGap:
    def test_clear_gap_decided(self):
        measurements = polylog_measurements(1.0, protocols=("fast",))
        slow = polylog_measurements(3.0, protocols=("slow",))
        measurements.sweeps.update(slow.sweeps)
        predicate = ExponentGap(
            name="gap", faster="fast", slower="slow",
            metric="max_energy", min_gap=1.0,
        )
        result = predicate.evaluate(measurements, EvalContext())
        assert result.passed and result.decided
        assert result.data["gap"] == pytest.approx(2.0)

    def test_missing_side_is_undecided(self):
        measurements = polylog_measurements(1.0, protocols=("fast",))
        predicate = ExponentGap(
            name="gap", faster="fast", slower="slow", metric="max_energy"
        )
        result = predicate.evaluate(measurements, EvalContext())
        assert not result.decided


class TestMeanDominance:
    def test_dominance_holds(self):
        measurements = polylog_measurements(1.0, protocols=("good",))
        worse = polylog_measurements(2.0, protocols=("bad",))
        measurements.sweeps.update(worse.sweeps)
        predicate = MeanDominance(
            name="dom", better="good", worse="bad",
            metric="max_energy", margin=1.2,
        )
        result = predicate.evaluate(measurements, EvalContext())
        assert result.passed and result.decided

    def test_margin_violation_fails(self):
        measurements = polylog_measurements(2.0, protocols=("good", "bad"))
        predicate = MeanDominance(
            name="dom", better="good", worse="bad",
            metric="max_energy", margin=1.5,
        )
        result = predicate.evaluate(measurements, EvalContext())
        assert not result.passed and result.decided

    def test_few_trials_undecided(self):
        measurements = polylog_measurements(
            1.0, protocols=("good", "bad"), trials=1
        )
        predicate = MeanDominance(
            name="dom", better="good", worse="bad",
            metric="max_energy", min_trials=2,
        )
        result = predicate.evaluate(measurements, EvalContext())
        assert not result.decided

    def test_no_common_sizes_undecided(self):
        measurements = Measurements()
        measurements.add_sweep_values("good", 16, {"max_energy": [1.0]})
        measurements.add_sweep_values("bad", 64, {"max_energy": [9.0]})
        predicate = MeanDominance(
            name="dom", better="good", worse="bad", metric="max_energy"
        )
        result = predicate.evaluate(measurements, EvalContext())
        assert not result.decided


class TestCeilingPredicate:
    def test_respected_ceiling_reports_headroom(self):
        measurements = polylog_measurements(1.0)
        predicate = CeilingPredicate(
            name="cap", protocol="alg", metric="max_energy",
            ceiling=lambda n, constants: 10_000.0,
            ceiling_label="big cap",
        )
        result = predicate.evaluate(measurements, EvalContext())
        assert result.passed and result.decided
        assert result.data["headroom"] > 1.0

    def test_violation_fails_decidedly(self):
        measurements = polylog_measurements(2.0)
        predicate = CeilingPredicate(
            name="cap", protocol="alg", metric="max_energy",
            ceiling=lambda n, constants: 1.0,
        )
        result = predicate.evaluate(measurements, EvalContext())
        assert not result.passed and result.decided
        assert result.data["violations"]

    def test_ceiling_callable_excluded_from_equality(self):
        first = CeilingPredicate(
            name="cap", protocol="alg", metric="rounds",
            ceiling=lambda n, constants: 1.0,
        )
        second = CeilingPredicate(
            name="cap", protocol="alg", metric="rounds",
            ceiling=lambda n, constants: 2.0,
        )
        assert first == second  # compare=False on the callable field


class TestRateBound:
    def cell(self, events, trials):
        measurements = Measurements()
        measurements.cell("rate/x").update(events=events, trials=trials)
        return measurements

    def test_at_most_decided_pass(self):
        predicate = RateBound(name="r", cell="rate/x", bound=0.5)
        result = predicate.evaluate(self.cell(1, 100), EvalContext())
        assert result.passed and result.decided

    def test_at_most_decided_fail(self):
        predicate = RateBound(name="r", cell="rate/x", bound=0.1)
        result = predicate.evaluate(self.cell(90, 100), EvalContext())
        assert not result.passed and result.decided

    def test_straddling_interval_undecided(self):
        predicate = RateBound(name="r", cell="rate/x", bound=0.5)
        result = predicate.evaluate(self.cell(5, 10), EvalContext())
        assert not result.decided

    def test_at_least_direction(self):
        predicate = RateBound(
            name="r", cell="rate/x", bound=0.5, direction="at_least"
        )
        result = predicate.evaluate(self.cell(99, 100), EvalContext())
        assert result.passed and result.decided

    def test_missing_cell_undecided(self):
        predicate = RateBound(name="r", cell="rate/none", bound=0.5)
        result = predicate.evaluate(Measurements(), EvalContext())
        assert not result.decided


class TestCellRateBounds:
    def test_trivial_bound_auto_passes(self):
        measurements = Measurements()
        measurements.cell("p/a").update(events=0, trials=5, bound=0.01)
        predicate = CellRateBounds(name="c", prefix="p/", trivial_below=0.05)
        result = predicate.evaluate(measurements, EvalContext())
        assert result.passed and result.decided

    def test_failing_cell_named(self):
        measurements = Measurements()
        measurements.cell("p/a").update(events=100, trials=100, bound=0.5)
        measurements.cell("p/b").update(events=0, trials=100, bound=0.5)
        predicate = CellRateBounds(name="c", prefix="p/", direction="at_least")
        result = predicate.evaluate(measurements, EvalContext())
        assert not result.passed and result.decided
        assert "p/b" in result.detail

    def test_cells_without_bound_ignored(self):
        measurements = Measurements()
        measurements.cell("p/meta").update(trials=5)
        predicate = CellRateBounds(name="c", prefix="p/")
        result = predicate.evaluate(measurements, EvalContext())
        assert not result.decided  # no usable cells yet


class TestLowerBoundConsistency:
    def test_refuted_cell_fails_decidedly(self):
        measurements = Measurements()
        # 0/200 with bound 0.5: Wilson upper << bound -> refuted.
        measurements.cell("lb/a").update(events=0, trials=200, bound=0.5)
        predicate = LowerBoundConsistency(name="lb", prefix="lb/")
        result = predicate.evaluate(measurements, EvalContext())
        assert not result.passed and result.decided

    def test_needs_min_trials_to_pass(self):
        measurements = Measurements()
        measurements.cell("lb/a").update(events=10, trials=20, bound=0.4)
        predicate = LowerBoundConsistency(
            name="lb", prefix="lb/", min_trials=60
        )
        result = predicate.evaluate(measurements, EvalContext())
        assert not result.decided
        measurements.cell("lb/a").update(events=40, trials=80)
        result = predicate.evaluate(measurements, EvalContext())
        assert result.passed and result.decided

    def test_trivial_bound_never_refutes(self):
        measurements = Measurements()
        measurements.cell("lb/a").update(events=0, trials=500, bound=0.01)
        predicate = LowerBoundConsistency(
            name="lb", prefix="lb/", min_trials=60, trivial_below=0.02
        )
        result = predicate.evaluate(measurements, EvalContext())
        assert result.passed and result.decided


class TestBackoffEnergyBounds:
    def backoff_cell(self, **overrides):
        cell = {
            "k": 4,
            "sender_energy_max": 4,
            "sender_energy_min": 4,
            "receiver_energy_max": 10,
            "receiver_cap": 20.0,
        }
        cell.update(overrides)
        measurements = Measurements()
        measurements.cell("backoff/k=4").update(cell)
        return measurements

    def test_exact_sender_energy_passes(self):
        predicate = BackoffEnergyBounds(name="b")
        result = predicate.evaluate(self.backoff_cell(), EvalContext())
        assert result.passed and result.decided

    def test_sender_above_k_fails(self):
        predicate = BackoffEnergyBounds(name="b")
        measurements = self.backoff_cell(sender_energy_max=5)
        result = predicate.evaluate(measurements, EvalContext())
        assert not result.passed and result.decided

    def test_sender_below_k_fails(self):
        # Lemma 8 is "exactly k", not "at most k".
        predicate = BackoffEnergyBounds(name="b")
        measurements = self.backoff_cell(sender_energy_min=3)
        result = predicate.evaluate(measurements, EvalContext())
        assert not result.passed and result.decided

    def test_receiver_over_cap_fails_without_slack(self):
        measurements = self.backoff_cell(receiver_energy_max=25)
        strict = BackoffEnergyBounds(name="b")
        loose = BackoffEnergyBounds(name="b", receiver_slack=2.0)
        assert not strict.evaluate(measurements, EvalContext()).passed
        assert loose.evaluate(measurements, EvalContext()).passed


class TestPairedBitIdentity:
    def pair(self, seed, delta=0):
        fields = {
            "valid": True, "mis_size": 5, "rounds": 40,
            "max_energy": 12, "mean_energy": 8.5,
        }
        other = dict(fields)
        other["rounds"] += delta
        return {"seed": seed, "a": fields, "b": other}

    def test_single_mismatch_decides_fail(self):
        measurements = Measurements()
        measurements.paired.append(self.pair(1, delta=1))
        predicate = PairedBitIdentity(name="p")
        result = predicate.evaluate(measurements, EvalContext())
        assert not result.passed and result.decided
        assert result.data["mismatches"][0]["field"] == "rounds"

    def test_agreement_needs_min_pairs(self):
        measurements = Measurements()
        measurements.paired.append(self.pair(1))
        predicate = PairedBitIdentity(name="p", min_pairs=3)
        result = predicate.evaluate(measurements, EvalContext())
        assert result.passed and not result.decided
        measurements.paired.extend([self.pair(2), self.pair(3)])
        result = predicate.evaluate(measurements, EvalContext())
        assert result.passed and result.decided


class TestScalarBound:
    def test_directions(self):
        measurements = Measurements()
        measurements.scalars["ratio"] = 0.4
        at_most = ScalarBound(name="s", key="ratio", bound=0.5)
        at_least = ScalarBound(
            name="s", key="ratio", bound=0.5, direction="at_least"
        )
        assert at_most.evaluate(measurements, EvalContext()).passed
        assert not at_least.evaluate(measurements, EvalContext()).passed

    def test_missing_scalar_undecided(self):
        predicate = ScalarBound(name="s", key="nope", bound=1.0)
        result = predicate.evaluate(Measurements(), EvalContext())
        assert not result.decided


class TestClaim:
    def test_predicates_concatenates_strict_then_shape(self):
        strict = ScalarBound(name="strict", key="x", bound=1.0)
        shape = ScalarBound(name="shape", key="x", bound=2.0)
        claim = Claim(
            claim_id="c",
            title="t",
            ref=REF,
            workload=SweepWorkload(protocols=("alg",), sizes=(16, 32)),
            strict=(strict,),
            shape=(shape,),
        )
        assert claim.predicates() == (strict, shape)

    def test_result_record_round_trip(self):
        predicate = ScalarBound(name="s", key="x", bound=1.0)
        measurements = Measurements()
        measurements.scalars["x"] = 0.5
        record = predicate.evaluate(measurements, EvalContext()).to_record()
        assert record["name"] == "s"
        assert record["passed"] is True
        assert record["data"]["value"] == 0.5
