"""Tests for the claims-verification subsystem."""
