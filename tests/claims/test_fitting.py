"""Tests for poly-log fitting and the bootstrap exponent CI."""

import math

import pytest

from repro.claims.fitting import (
    ExponentCI,
    PolylogModel,
    bootstrap_exponent_ci,
    fit_polylog,
)
from repro.errors import ConfigurationError

SIZES = (16, 32, 64, 128, 256)


def power_law(exponent, loglog_power=0, coefficient=3.0):
    model = PolylogModel(exponent, loglog_power)
    return [coefficient * model.basis(n) for n in SIZES]


class TestPolylogModel:
    def test_basis_plain_log(self):
        assert PolylogModel(2.0).basis(16) == pytest.approx(16.0)

    def test_basis_with_loglog(self):
        assert PolylogModel(1.0, 1).basis(16) == pytest.approx(8.0)

    def test_small_n_rejected(self):
        with pytest.raises(ConfigurationError):
            PolylogModel(1.0).basis(2)

    def test_labels(self):
        assert PolylogModel(1.0).label == "log n"
        assert PolylogModel(2.0).label == "log^2 n"
        assert PolylogModel(2.0, 1).label == "log^2 n loglog n"


class TestFitPolylog:
    def test_recovers_exact_power(self):
        fit = fit_polylog(SIZES, power_law(2.0))
        assert fit.exponent == pytest.approx(2.0, abs=1e-9)
        assert fit.model.label == "log^2 n"
        assert fit.coefficient == pytest.approx(3.0)
        assert fit.residual == pytest.approx(0.0, abs=1e-18)

    def test_prefers_loglog_model_when_data_has_one(self):
        fit = fit_polylog(SIZES, power_law(2.0, loglog_power=1))
        assert fit.model.loglog_power == 1
        assert fit.model.label == "log^2 n loglog n"

    def test_candidates_cover_full_grid(self):
        fit = fit_polylog(SIZES, power_law(1.0))
        assert len(fit.candidates) == 16  # 8 log powers x 2 loglog powers
        labels = [label for label, _ in fit.candidates]
        assert "log^3 n" in labels and "log n loglog n" in labels

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            fit_polylog([16], [1.0])  # one size
        with pytest.raises(ConfigurationError):
            fit_polylog([16, 32], [1.0])  # misaligned
        with pytest.raises(ConfigurationError):
            fit_polylog([2, 16], [1.0, 2.0])  # n < 4
        with pytest.raises(ConfigurationError):
            fit_polylog([16, 32], [1.0, 0.0])  # non-positive value


class TestBootstrapExponentCI:
    def samples(self, exponent=2.0, trials=5, jitter=0.05):
        return {
            n: [
                PolylogModel(exponent).basis(n)
                * (1.0 + jitter * ((t % 3) - 1))
                for t in range(trials)
            ]
            for n in SIZES
        }

    def test_deterministic_given_seed(self):
        samples = self.samples()
        first = bootstrap_exponent_ci(samples, seed=11)
        second = bootstrap_exponent_ci(samples, seed=11)
        assert (first.low, first.high) == (second.low, second.high)

    def test_ci_contains_true_exponent(self):
        ci = bootstrap_exponent_ci(self.samples(exponent=2.0), seed=1)
        assert ci.contains(2.0)
        assert ci.low <= ci.estimate <= ci.high

    def test_noise_free_samples_collapse(self):
        ci = bootstrap_exponent_ci(self.samples(jitter=0.0), seed=0)
        assert ci.width == pytest.approx(0.0, abs=1e-12)
        assert ci.estimate == pytest.approx(2.0, abs=1e-9)

    def test_more_confidence_never_narrower(self):
        samples = self.samples(jitter=0.2)
        narrow = bootstrap_exponent_ci(samples, confidence=0.5, seed=2)
        wide = bootstrap_exponent_ci(samples, confidence=0.99, seed=2)
        assert wide.width >= narrow.width

    def test_validation(self):
        samples = self.samples()
        with pytest.raises(ConfigurationError):
            bootstrap_exponent_ci(samples, confidence=1.0)
        with pytest.raises(ConfigurationError):
            bootstrap_exponent_ci(samples, resamples=0)
        with pytest.raises(ConfigurationError):
            bootstrap_exponent_ci({16: [1.0, 2.0]})  # one size cell

    def test_empty_cells_dropped(self):
        samples = dict(self.samples())
        samples[512] = []
        ci = bootstrap_exponent_ci(samples, seed=0)
        assert isinstance(ci, ExponentCI)

    def test_width_property(self):
        ci = ExponentCI(
            estimate=1.0, low=0.5, high=1.5, confidence=0.95, resamples=10
        )
        assert ci.width == pytest.approx(1.0)
        assert ci.contains(0.5) and not ci.contains(1.6)
