"""Tests for the content-addressed result cache."""

import json

from repro.constants import ConstantsProfile
from repro.core import CDMISProtocol
from repro.exec.cache import (
    ResultCache,
    graph_fingerprint,
    protocol_fingerprint,
    trial_key,
)
from repro.graphs import gnp_random_graph, path_graph


def make_key(**overrides):
    params = dict(
        protocol=CDMISProtocol(constants=ConstantsProfile.fast()),
        model_name="cd",
        graph_spec="workload:gnp/n=64",
        seed=3,
        max_rounds=None,
        seed_mode="decoupled",
    )
    params.update(overrides)
    return trial_key(**params)


class TestTrialKey:
    def test_stable(self):
        assert make_key() == make_key()

    def test_seed_changes_key(self):
        assert make_key(seed=4) != make_key()

    def test_graph_spec_changes_key(self):
        assert make_key(graph_spec="workload:udg/n=64") != make_key()

    def test_model_changes_key(self):
        assert make_key(model_name="no-cd") != make_key()

    def test_constants_profile_changes_key(self):
        other = CDMISProtocol(constants=ConstantsProfile.practical())
        assert make_key(protocol=other) != make_key()

    def test_seed_mode_changes_key(self):
        assert make_key(seed_mode="coupled") != make_key()

    def test_max_rounds_changes_key(self):
        assert make_key(max_rounds=10_000) != make_key()


class TestFingerprints:
    def test_protocol_fingerprint_captures_constants(self):
        fast = protocol_fingerprint(CDMISProtocol(constants=ConstantsProfile.fast()))
        practical = protocol_fingerprint(
            CDMISProtocol(constants=ConstantsProfile.practical())
        )
        assert fast["type"] == practical["type"] == "CDMISProtocol"
        assert fast["config"] != practical["config"]

    def test_graph_fingerprint_distinguishes_topologies(self):
        a = graph_fingerprint(gnp_random_graph(16, 0.2, seed=1))
        b = graph_fingerprint(gnp_random_graph(16, 0.2, seed=2))
        assert a != b
        assert graph_fingerprint(path_graph(8)) == graph_fingerprint(path_graph(8))


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = make_key()
        assert cache.get(key) is None
        cache.put(key, {"seed": 3, "valid": True})
        assert cache.get(key) == {"seed": 3, "valid": True}
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_persists_across_instances(self, tmp_path):
        root = tmp_path / "cache"
        ResultCache(root).put("ab" + "0" * 62, {"x": 1})
        fresh = ResultCache(root)
        assert fresh.get("ab" + "0" * 62) == {"x": 1}
        assert len(fresh) == 1

    def test_sharded_jsonl_layout(self, tmp_path):
        root = tmp_path / "cache"
        cache = ResultCache(root)
        cache.put("ab" + "0" * 62, {"x": 1})
        cache.put("cd" + "0" * 62, {"x": 2})
        assert (root / "ab.jsonl").exists()
        assert (root / "cd.jsonl").exists()
        line = (root / "ab.jsonl").read_text().strip()
        assert json.loads(line)["record"] == {"x": 1}

    def test_torn_write_is_skipped(self, tmp_path):
        root = tmp_path / "cache"
        cache = ResultCache(root)
        cache.put("ab" + "0" * 62, {"x": 1})
        with open(root / "ab.jsonl", "a") as handle:
            handle.write('{"key": "ab11", "rec')  # simulated crash mid-line
        fresh = ResultCache(root)
        assert fresh.get("ab" + "0" * 62) == {"x": 1}

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put("ab" + "0" * 62, {"x": 1})
        cache.clear()
        assert cache.get("ab" + "0" * 62) is None
        assert len(cache) == 0

    def test_hit_rate(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put("ab" + "0" * 62, {"x": 1})
        cache.get("ab" + "0" * 62)
        cache.get("cd" + "0" * 62)
        assert cache.stats.hit_rate == 0.5
