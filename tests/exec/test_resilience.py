"""Retry / timeout / quarantine behaviour of the resilient executors."""

import time

import pytest

from repro.errors import ConfigurationError
from repro.exec.cache import ResultCache
from repro.exec.executor import ProcessPoolExecutor, SequentialExecutor
from repro.exec.pool import fork_available
from repro.exec.resilience import (
    QuarantinedTrial,
    QuarantineRecord,
    RetryPolicy,
    is_quarantine_record,
)


def square(seed):
    return seed * seed


def boom_on_7(seed):
    if seed == 7:
        raise ValueError("seed 7 is poisoned")
    return seed * seed


def hang_on_7(seed):
    if seed == 7:
        time.sleep(60.0)
    return seed * seed


FAST_POLICY = RetryPolicy(max_retries=2, backoff_base_s=0.0)


class TestRetryPolicy:
    def test_defaults_inactive(self):
        assert not RetryPolicy().active
        assert RetryPolicy(max_retries=1).active
        assert RetryPolicy(timeout_s=5.0).active

    def test_max_attempts(self):
        assert RetryPolicy(max_retries=2).max_attempts == 3

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"timeout_s": 0.0},
            {"timeout_s": -2.0},
            {"backoff_base_s": -0.1},
            {"jitter": -0.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)

    def test_backoff_grows_and_is_deterministic(self):
        policy = RetryPolicy(max_retries=5, backoff_base_s=0.25)
        first = policy.backoff_s(seed=3, attempt=1)
        second = policy.backoff_s(seed=3, attempt=2)
        assert 0.25 <= first <= 0.375  # base * (1 + jitter*U)
        assert second > first
        assert first == RetryPolicy(max_retries=5).backoff_s(seed=3, attempt=1)
        # Different seeds jitter differently (no thundering herd).
        assert first != policy.backoff_s(seed=4, attempt=1)

    def test_backoff_caps(self):
        policy = RetryPolicy(
            max_retries=50, backoff_base_s=1.0, backoff_cap_s=4.0, jitter=0.0
        )
        assert policy.backoff_s(seed=0, attempt=40) == 4.0


class TestQuarantineRecord:
    def test_cache_round_trip(self):
        record = QuarantineRecord(
            seed=7, attempts=3, error_type="ValueError",
            message="boom", traceback="trace...",
        )
        encoded = record.to_record()
        assert is_quarantine_record(encoded)
        assert QuarantineRecord.from_record(encoded) == record

    def test_ordinary_records_not_mistaken(self):
        assert not is_quarantine_record({"valid": True, "mis_size": 4})
        assert not is_quarantine_record(None)

    def test_describe_names_seed_and_error(self):
        record = QuarantineRecord(
            seed=7, attempts=3, error_type="ValueError",
            message="boom", traceback="",
        )
        text = record.describe()
        assert "7" in text and "ValueError" in text


def executors():
    yield "sequential", SequentialExecutor()
    if fork_available():
        yield "pool", ProcessPoolExecutor(jobs=2)


@pytest.mark.parametrize(
    "executor", [e for _, e in executors()], ids=[n for n, _ in executors()]
)
class TestQuarantine:
    def test_poisoned_seed_quarantined_others_complete(self, executor):
        results = executor.execute(
            boom_on_7, [5, 6, 7, 8], policy=FAST_POLICY
        )
        assert results[0] == 25 and results[1] == 36 and results[3] == 64
        quarantined = results[2]
        assert isinstance(quarantined, QuarantinedTrial)
        assert quarantined.record.seed == 7
        assert quarantined.record.attempts == FAST_POLICY.max_attempts
        assert quarantined.record.error_type == "ValueError"
        assert not quarantined.from_cache

    def test_quarantine_persists_through_cache(self, executor, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        calls = {"count": 0}

        def key_for(seed):
            return f"seed-{seed}"

        def flaky(seed):
            calls["count"] += 1
            return boom_on_7(seed)

        first = executor.execute(
            flaky, [6, 7], cache=cache, key_for=key_for, policy=FAST_POLICY
        )
        assert isinstance(first[1], QuarantinedTrial)
        assert is_quarantine_record(cache.get(key_for(7)))

        # Resume: the poisoned seed is skipped outright, not re-run.
        resumed = SequentialExecutor().execute(
            boom_on_7, [6, 7], cache=cache, key_for=key_for, policy=FAST_POLICY
        )
        assert resumed[0] == 36
        assert isinstance(resumed[1], QuarantinedTrial)
        assert resumed[1].from_cache

    def test_without_policy_failures_still_propagate(self, executor):
        with pytest.raises(ValueError, match="poisoned"):
            executor.execute(boom_on_7, [7])

    def test_flaky_seed_recovers_within_budget(self, executor, tmp_path):
        # Fails twice, succeeds on the third attempt — inside the
        # policy's budget, so no quarantine.  A file tracks attempts
        # across pool workers (fork shares no state back).
        marker = tmp_path / "attempts"

        def flaky(seed):
            count = len(marker.read_text()) if marker.exists() else 0
            if seed == 7 and count < 2:
                marker.write_text("x" * (count + 1))
                raise ValueError("transient")
            return seed * seed

        results = executor.execute(flaky, [7], policy=FAST_POLICY)
        assert results == [49]


@pytest.mark.skipif(not fork_available(), reason="requires fork start method")
class TestTimeouts:
    def test_hung_trial_is_killed_and_quarantined(self):
        policy = RetryPolicy(timeout_s=0.5, backoff_base_s=0.0)
        start = time.monotonic()
        results = ProcessPoolExecutor(jobs=2).execute(
            hang_on_7, [6, 7, 8], policy=policy
        )
        elapsed = time.monotonic() - start
        assert elapsed < 30.0  # nowhere near the 60 s sleep
        assert results[0] == 36 and results[2] == 64
        assert isinstance(results[1], QuarantinedTrial)
        assert results[1].record.error_type == "TrialTimeoutError"

    def test_sequential_timeout_interrupts_main_thread(self):
        policy = RetryPolicy(timeout_s=0.2, backoff_base_s=0.0)
        results = SequentialExecutor().execute(hang_on_7, [7], policy=policy)
        assert isinstance(results[0], QuarantinedTrial)


class TestAllQuarantined:
    def test_summary_describe_survives_empty_outcomes(self):
        # Regression: a battery whose every seed quarantined used to
        # crash describe() on summarize([]) instead of reporting.
        from repro.analysis.runner import TrialSummary

        record = QuarantineRecord(
            seed=7, attempts=3, error_type="TrialTimeoutError",
            message="trial exceeded timeout of 0.005s", traceback="",
        )
        summary = TrialSummary(
            protocol_name="cd-mis", model_name="cd", graph_name="gnp(8)",
            outcomes=[],
            quarantined=[QuarantinedTrial(record)],
        )
        text = summary.describe()
        assert "0 trials" in text
        assert "quarantined 1 seed" in text
        assert "TrialTimeoutError" in text


class TestDeterminism:
    @pytest.mark.skipif(not fork_available(), reason="requires fork")
    def test_pool_matches_sequential_under_quarantine(self):
        seq = SequentialExecutor().execute(
            boom_on_7, list(range(10)), policy=FAST_POLICY
        )
        par = ProcessPoolExecutor(jobs=3).execute(
            boom_on_7, list(range(10)), policy=FAST_POLICY
        )
        assert [r for r in seq if not isinstance(r, QuarantinedTrial)] == [
            r for r in par if not isinstance(r, QuarantinedTrial)
        ]
        assert isinstance(seq[7], QuarantinedTrial)
        assert isinstance(par[7], QuarantinedTrial)
        assert par[7].record.seed == seq[7].record.seed == 7
