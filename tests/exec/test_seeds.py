"""Tests for deterministic sub-seed derivation."""

from repro.exec.seeds import derive_seed, graph_seed, protocol_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "graph") == derive_seed(7, "graph")

    def test_labels_independent(self):
        assert derive_seed(7, "graph") != derive_seed(7, "protocol")

    def test_masters_independent(self):
        assert derive_seed(7, "graph") != derive_seed(8, "graph")

    def test_range(self):
        for master in (0, 1, 2**31, -3):
            for label in ("graph", "protocol", "x"):
                value = derive_seed(master, label)
                assert 0 <= value < 2**63

    def test_helpers_match_labels(self):
        assert graph_seed(42) == derive_seed(42, "graph")
        assert protocol_seed(42) == derive_seed(42, "protocol")

    def test_no_collisions_over_seed_range(self):
        values = {graph_seed(s) for s in range(2000)}
        values |= {protocol_seed(s) for s in range(2000)}
        assert len(values) == 4000
