"""Concurrency tests for the result cache.

The campaign service's sharded workers (and any multi-process campaign
sharing one cache directory) append to the same JSONL shard files
concurrently.  These tests hammer a single shard from many processes
and many threads and assert that every record survives intact — no torn
lines, no dropped records.
"""

import json
import multiprocessing
import threading

import pytest

from repro.exec.cache import CacheStats, ResultCache
from repro.exec.pool import fork_available

PREFIX = "ab"  # every key below lands in the same shard file


def _key(worker: int, item: int) -> str:
    return f"{PREFIX}{worker:04x}{item:04x}" + "0" * 54


def _hammer_one_shard(root: str, worker: int, count: int) -> None:
    cache = ResultCache(root)
    for item in range(count):
        cache.put(_key(worker, item), {"worker": worker, "item": item})


@pytest.mark.skipif(not fork_available(), reason="requires fork start method")
class TestMultiProcessWriters:
    def test_single_shard_survives_concurrent_processes(self, tmp_path):
        root = tmp_path / "cache"
        workers, count = 8, 40
        context = multiprocessing.get_context("fork")
        processes = [
            context.Process(
                target=_hammer_one_shard, args=(str(root), worker, count)
            )
            for worker in range(workers)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join()
            assert process.exitcode == 0

        # Every line in the shard file parses — no interleaved writes.
        lines = (root / f"{PREFIX}.jsonl").read_text().splitlines()
        assert len(lines) == workers * count
        for line in lines:
            entry = json.loads(line)
            assert entry["record"]["worker"] in range(workers)

        # A fresh instance sees every record from every process.
        fresh = ResultCache(root)
        assert len(fresh) == workers * count
        for worker in range(workers):
            for item in range(count):
                assert fresh.get(_key(worker, item)) == {
                    "worker": worker,
                    "item": item,
                }


class TestThreadedWriters:
    def test_single_instance_shared_across_threads(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        workers, count = 8, 40

        def hammer(worker: int) -> None:
            for item in range(count):
                key = _key(worker, item)
                cache.put(key, {"worker": worker, "item": item})
                assert cache.get(key) is not None

        threads = [
            threading.Thread(target=hammer, args=(worker,))
            for worker in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert cache.stats.writes == workers * count
        assert cache.stats.hits == workers * count
        fresh = ResultCache(tmp_path / "cache")
        assert len(fresh) == workers * count


class TestCacheStatsDivision:
    def test_hit_rate_zero_lookups_is_zero(self):
        stats = CacheStats()
        assert stats.lookups == 0
        assert stats.hit_rate == 0.0
        assert stats.to_record()["hit_rate"] == 0.0

    def test_hit_rate_zero_lookups_with_writes(self):
        # Writes alone must not perturb the rate (writes aren't lookups).
        stats = CacheStats(writes=17)
        assert stats.hit_rate == 0.0

    def test_hit_rate_counts_only_lookups(self):
        stats = CacheStats(hits=3, misses=1, writes=100)
        assert stats.hit_rate == 0.75
        assert stats.to_record() == {
            "hits": 3,
            "misses": 1,
            "writes": 100,
            "hit_rate": 0.75,
        }
