"""Tests for the executor facade, pool partitioning, and defaults."""

import pytest

from repro.exec.cache import ResultCache
from repro.exec.executor import (
    ExecutionDefaults,
    ProcessPoolExecutor,
    ProgressEvent,
    SequentialExecutor,
    TrialExecutor,
    execution_defaults,
    get_execution_defaults,
    make_executor,
)
from repro.exec.pool import fork_available, partition_chunks, run_in_pool


def square(seed):
    return seed * seed


class TestPartitionChunks:
    def test_empty(self):
        assert partition_chunks([], 4) == []

    def test_covers_all_items_in_order(self):
        items = [(i, 10 + i) for i in range(10)]
        chunks = partition_chunks(items, 3)
        assert [pair for chunk in chunks for pair in chunk] == items

    def test_explicit_chunk_size(self):
        chunks = partition_chunks([(i, i) for i in range(5)], 2, chunk_size=2)
        assert [len(c) for c in chunks] == [2, 2, 1]

    def test_default_targets_four_chunks_per_worker(self):
        chunks = partition_chunks([(i, i) for i in range(80)], 2)
        assert len(chunks) == 8


@pytest.mark.skipif(not fork_available(), reason="requires fork start method")
class TestRunInPool:
    def test_results_cover_all_indices(self):
        pairs = run_in_pool(square, [(i, i) for i in range(9)], jobs=3)
        assert sorted(pairs) == [(i, i * i) for i in range(9)]

    def test_closures_cross_fork(self):
        offset = 1000
        pairs = run_in_pool(lambda s: s + offset, [(0, 1), (1, 2)], jobs=2)
        assert sorted(pairs) == [(0, 1001), (1, 1002)]

    def test_worker_exception_propagates(self):
        def boom(seed):
            raise ValueError(f"seed {seed}")

        with pytest.raises(ValueError, match="seed"):
            run_in_pool(boom, [(0, 0), (1, 1)], jobs=2)


class TestExecutors:
    def test_sequential_order(self):
        outcomes = SequentialExecutor().execute(square, [3, 1, 2])
        assert outcomes == [9, 1, 4]

    def test_pool_matches_sequential(self):
        seeds = list(range(12))
        seq = SequentialExecutor().execute(square, seeds)
        par = ProcessPoolExecutor(jobs=4).execute(square, seeds)
        assert par == seq

    def test_make_executor(self):
        assert isinstance(make_executor(1), SequentialExecutor)
        pool = make_executor(4)
        assert isinstance(pool, ProcessPoolExecutor)
        assert pool.jobs == 4

    def test_bad_jobs_rejected(self):
        with pytest.raises(ValueError):
            ProcessPoolExecutor(jobs=0)

    def test_cache_short_circuits_execution(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        calls = []

        def run_one(seed):
            calls.append(seed)
            return seed * 10

        key_for = lambda seed: f"{seed:02d}" + "0" * 62  # noqa: E731
        executor = SequentialExecutor()
        first = executor.execute(
            run_one, [1, 2, 3], cache=cache, key_for=key_for,
            encode=lambda v: {"v": v}, decode=lambda r: r["v"],
        )
        assert first == [10, 20, 30] and calls == [1, 2, 3]
        second = executor.execute(
            run_one, [1, 2, 3], cache=cache, key_for=key_for,
            encode=lambda v: {"v": v}, decode=lambda r: r["v"],
        )
        assert second == first
        assert calls == [1, 2, 3]  # nothing re-ran
        assert cache.stats.hits == 3

    def test_progress_events(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key_for = lambda seed: f"{seed:02d}" + "0" * 62  # noqa: E731
        executor = SequentialExecutor()
        executor.execute(
            square, [1, 2], cache=cache, key_for=key_for,
            encode=lambda v: {"v": v}, decode=lambda r: r["v"],
        )
        events = []
        executor.execute(
            square, [1, 2, 3], cache=cache, key_for=key_for,
            encode=lambda v: {"v": v}, decode=lambda r: r["v"],
            progress=events.append,
        )
        assert [event.done for event in events] == [2, 3]
        assert all(event.total == 3 for event in events)
        assert all(event.cache_hits == 2 for event in events)
        assert events[-1].eta_s == 0.0
        assert events[-1].remaining == 0


class ReversedCompletionExecutor(TrialExecutor):
    """Completes pending trials in reverse submission order.

    Models the pool's out-of-order chunk completions deterministically:
    ``on_result`` fires for the *last* pending trial first, so progress
    accounting and result placement must not assume arrival order.
    """

    jobs = 3

    def _dispatch(
        self, run_one, pending, on_result, policy=None, on_failure=None
    ) -> None:
        for index, seed in reversed(pending):
            on_result(index, run_one(seed))


class TestProgressEvent:
    def test_remaining_counts_down(self):
        event = ProgressEvent(
            done=3, total=10, cache_hits=1, elapsed_s=0.5, eta_s=1.0
        )
        assert event.remaining == 7

    def test_remaining_zero_when_done(self):
        event = ProgressEvent(
            done=10, total=10, cache_hits=0, elapsed_s=1.0, eta_s=0.0
        )
        assert event.remaining == 0

    def test_remaining_empty_battery(self):
        event = ProgressEvent(
            done=0, total=0, cache_hits=0, elapsed_s=0.0, eta_s=None
        )
        assert event.remaining == 0


class TestOutOfOrderProgress:
    """Progress/ETA emission when pool completions arrive out of order."""

    def test_done_is_monotonic_and_results_ordered(self):
        events = []
        results = ReversedCompletionExecutor().execute(
            square, [1, 2, 3, 4], progress=events.append
        )
        assert results == [1, 4, 9, 16]  # seed order, not completion order
        assert [event.done for event in events] == [0, 1, 2, 3, 4]
        assert [event.remaining for event in events] == [4, 3, 2, 1, 0]
        assert all(event.total == 4 for event in events)

    def test_eta_none_until_first_completion_then_zero_at_end(self):
        events = []
        ReversedCompletionExecutor().execute(
            square, [1, 2, 3], progress=events.append
        )
        assert events[0].eta_s is None  # nothing computed yet
        assert all(event.eta_s is not None for event in events[1:])
        assert events[-1].eta_s == 0.0

    def test_elapsed_is_monotonic(self):
        events = []
        ReversedCompletionExecutor().execute(
            square, [5, 6, 7], progress=events.append
        )
        elapsed = [event.elapsed_s for event in events]
        assert elapsed == sorted(elapsed)

    def test_cache_hits_counted_before_dispatch(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key_for = lambda seed: f"{seed:02d}" + "0" * 62  # noqa: E731
        encode, decode = lambda v: {"v": v}, lambda r: r["v"]  # noqa: E731
        ReversedCompletionExecutor().execute(
            square, [1, 2], cache=cache, key_for=key_for,
            encode=encode, decode=decode,
        )
        events = []
        results = ReversedCompletionExecutor().execute(
            square, [1, 2, 3, 4], cache=cache, key_for=key_for,
            encode=encode, decode=decode, progress=events.append,
        )
        assert results == [1, 4, 9, 16]
        # Initial event carries the cache hits; computed trials then
        # arrive out of order without disturbing the counters.
        assert [event.done for event in events] == [2, 3, 4]
        assert all(event.cache_hits == 2 for event in events)
        assert events[0].eta_s is None  # hits alone predict nothing
        assert events[-1].eta_s == 0.0
        assert events[-1].remaining == 0

    @pytest.mark.skipif(not fork_available(), reason="requires fork")
    def test_real_pool_progress_matches_sequential_accounting(self):
        seeds = list(range(8))
        pool_events, seq_events = [], []
        pool = ProcessPoolExecutor(jobs=4).execute(
            square, seeds, progress=pool_events.append
        )
        seq = SequentialExecutor().execute(
            square, seeds, progress=seq_events.append
        )
        assert pool == seq
        assert [e.done for e in pool_events] == [e.done for e in seq_events]
        assert pool_events[-1].eta_s == 0.0 and pool_events[-1].remaining == 0


class TestExecutionDefaults:
    def test_default_is_sequential_uncached(self):
        defaults = get_execution_defaults()
        assert defaults == ExecutionDefaults(jobs=1, cache=None)

    def test_context_manager_swaps_and_restores(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        with execution_defaults(jobs=4, cache=cache) as installed:
            assert installed.jobs == 4
            assert get_execution_defaults().cache is cache
            with execution_defaults(cache=False):
                assert get_execution_defaults().jobs == 4
                assert get_execution_defaults().cache is None
        assert get_execution_defaults() == ExecutionDefaults(jobs=1, cache=None)
