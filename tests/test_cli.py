"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main, make_graph, make_protocol
from repro.constants import ConstantsProfile


class TestFactories:
    def test_make_protocol_known(self):
        protocol = make_protocol("cd-mis", ConstantsProfile.fast())
        assert protocol.name == "cd-mis"

    def test_make_protocol_unknown(self):
        with pytest.raises(SystemExit):
            make_protocol("nonsense", ConstantsProfile.fast())

    @pytest.mark.parametrize(
        "topology", ["gnp", "udg", "tree", "path", "cycle", "grid", "star",
                     "clique", "empty", "hard", "gnp-dense"]
    )
    def test_make_graph_families(self, topology):
        graph = make_graph(topology, 16, seed=1)
        assert graph.num_nodes >= 4

    def test_make_graph_unknown(self):
        with pytest.raises(SystemExit):
            make_graph("moebius", 16, seed=1)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "cd-mis"])
        assert args.command == "run"
        assert args.n == 128
        assert args.profile == "practical"

    def test_profile_flag(self):
        args = build_parser().parse_args(["--profile", "fast", "list"])
        assert args.profile == "fast"

    def test_channels_default_inherits(self):
        args = build_parser().parse_args(["run", "mc-luby"])
        assert args.channels is None

    @pytest.mark.parametrize(
        "command",
        [
            ["run", "mc-luby"],
            ["sweep", "mc-luby"],
            ["experiment", "CHANNELS"],
            ["claims", "verify", "channel_sweep"],
        ],
        ids=["run", "sweep", "experiment", "claims-verify"],
    )
    def test_channels_flag_accepted(self, command):
        args = build_parser().parse_args([*command, "--channels", "4"])
        assert args.channels == 4

    def test_channels_must_be_positive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "mc-luby", "--channels", "0"])

    def test_make_protocol_mc_luby_channels(self):
        protocol = make_protocol("mc-luby", ConstantsProfile.fast(), channels=4)
        assert protocol.name == "mc-luby"
        assert protocol.channels == 4


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "cd-mis" in output
        assert "E12" in output

    def test_run_success_exit_code(self, capsys):
        code = main(
            ["--profile", "fast", "run", "cd-mis", "--n", "24", "--trials", "2"]
        )
        assert code == 0
        assert "cd-mis@cd" in capsys.readouterr().out

    def test_run_with_explicit_model(self, capsys):
        code = main(
            [
                "--profile", "fast", "run", "cd-mis",
                "--n", "16", "--model", "beep", "--topology", "path",
            ]
        )
        assert code == 0

    def test_sweep(self, capsys):
        code = main(
            [
                "--profile", "fast", "sweep", "cd-mis",
                "--sizes", "16", "32", "--trials", "2",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "fit" in output

    def test_lowerbound(self, capsys):
        code = main(
            [
                "lowerbound", "--n", "16",
                "--budgets", "1", "4", "--trials", "10",
            ]
        )
        assert code == 0
        assert "Theorem 1" in capsys.readouterr().out

    def test_experiment_single(self, capsys):
        code = main(["experiment", "E9"])
        assert code == 0
        assert "backoff" in capsys.readouterr().out

    def test_experiment_unknown(self):
        with pytest.raises(KeyError):
            main(["experiment", "E42"])


class TestClaimsParser:
    def test_verify_defaults(self):
        args = build_parser().parse_args(["claims", "verify"])
        assert args.claims_command == "verify"
        assert args.claim_ids == []
        assert not args.quick
        assert args.budget is None
        assert args.seed == 0
        assert args.json is None

    def test_verify_flags(self):
        args = build_parser().parse_args(
            ["claims", "verify", "thm2-cd-energy", "--quick",
             "--budget", "50", "--jobs", "2", "--json", "out.json"]
        )
        assert args.claim_ids == ["thm2-cd-energy"]
        assert args.quick and args.budget == 50 and args.jobs == 2

    def test_budget_must_be_positive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["claims", "verify", "--budget", "0"])

    def test_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["claims"])


class TestClaimsCommands:
    def test_list(self, capsys):
        assert main(["claims", "list", "--quick"]) == 0
        output = capsys.readouterr().out
        assert "quick tier" in output
        assert "thm2-cd-energy" in output
        assert "lemma9-backoff-delivery" in output

    def test_verify_unknown_claim_rejected(self):
        with pytest.raises(SystemExit, match="unknown claim"):
            main(["claims", "verify", "thm99-bogus", "--quick"])

    def test_verify_single_claim_writes_document(self, tmp_path, capsys):
        path = tmp_path / "CLAIMS.json"
        code = main(
            ["claims", "verify", "lemma5-residual-shrinkage",
             "--quick", "--json", str(path)]
        )
        assert code == 0
        assert "lemma5-residual-shrinkage" in capsys.readouterr().out
        import json as json_module

        document = json_module.loads(path.read_text())
        assert document["schema"] == "repro-claims/1"
        assert document["claims"][0]["claim_id"] == "lemma5-residual-shrinkage"

    def test_report_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "CLAIMS.json"
        assert main(
            ["claims", "verify", "lemma5-residual-shrinkage",
             "--quick", "--json", str(path)]
        ) == 0
        capsys.readouterr()
        assert main(["claims", "report", "--json", str(path)]) == 0
        assert "# Claims verification report" in capsys.readouterr().out

    def test_report_missing_document_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="no claims document"):
            main(["claims", "report", "--json", str(tmp_path / "nope.json")])
