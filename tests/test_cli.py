"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main, make_graph, make_protocol
from repro.constants import ConstantsProfile


class TestFactories:
    def test_make_protocol_known(self):
        protocol = make_protocol("cd-mis", ConstantsProfile.fast())
        assert protocol.name == "cd-mis"

    def test_make_protocol_unknown(self):
        with pytest.raises(SystemExit):
            make_protocol("nonsense", ConstantsProfile.fast())

    @pytest.mark.parametrize(
        "topology", ["gnp", "udg", "tree", "path", "cycle", "grid", "star",
                     "clique", "empty", "hard", "gnp-dense"]
    )
    def test_make_graph_families(self, topology):
        graph = make_graph(topology, 16, seed=1)
        assert graph.num_nodes >= 4

    def test_make_graph_unknown(self):
        with pytest.raises(SystemExit):
            make_graph("moebius", 16, seed=1)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "cd-mis"])
        assert args.command == "run"
        assert args.n == 128
        assert args.profile == "practical"

    def test_profile_flag(self):
        args = build_parser().parse_args(["--profile", "fast", "list"])
        assert args.profile == "fast"


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "cd-mis" in output
        assert "E12" in output

    def test_run_success_exit_code(self, capsys):
        code = main(
            ["--profile", "fast", "run", "cd-mis", "--n", "24", "--trials", "2"]
        )
        assert code == 0
        assert "cd-mis@cd" in capsys.readouterr().out

    def test_run_with_explicit_model(self, capsys):
        code = main(
            [
                "--profile", "fast", "run", "cd-mis",
                "--n", "16", "--model", "beep", "--topology", "path",
            ]
        )
        assert code == 0

    def test_sweep(self, capsys):
        code = main(
            [
                "--profile", "fast", "sweep", "cd-mis",
                "--sizes", "16", "32", "--trials", "2",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "fit" in output

    def test_lowerbound(self, capsys):
        code = main(
            [
                "lowerbound", "--n", "16",
                "--budgets", "1", "4", "--trials", "10",
            ]
        )
        assert code == 0
        assert "Theorem 1" in capsys.readouterr().out

    def test_experiment_single(self, capsys):
        code = main(["experiment", "E9"])
        assert code == 0
        assert "backoff" in capsys.readouterr().out

    def test_experiment_unknown(self):
        with pytest.raises(KeyError):
            main(["experiment", "E42"])
