"""Tests for the Theorem 1 lower-bound package."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.lowerbound import (
    SUCCESS_THRESHOLD,
    EnergyCappedCDMIS,
    SpreadCoinStrategy,
    SynchronizedCoinStrategy,
    classify_failure,
    hard_instance,
    isolated_nodes,
    matched_pairs,
    min_budget_for_success,
    run_lower_bound_experiment,
    sync_coin_failure,
    sync_coin_pair_failure,
    theorem1_exact_pair_bound,
    theorem1_failure_lower_bound,
)
from repro.radio import CD, run_protocol


class TestHardInstance:
    def test_structure(self):
        graph = hard_instance(32)
        assert graph.num_nodes == 32
        assert len(matched_pairs(graph)) == 8
        assert len(isolated_nodes(graph)) == 16

    def test_requires_multiple_of_four(self):
        from repro.errors import GraphError

        with pytest.raises(GraphError):
            hard_instance(30)

    def test_classify_valid_output(self):
        graph = hard_instance(8)
        mis = {0, 2, 4, 5, 6, 7}  # one per pair (0-1, 2-3) + isolated 4..7
        breakdown = classify_failure(graph, mis)
        assert breakdown["valid"]
        assert breakdown["both_joined_pairs"] == 0

    def test_classify_both_joined(self):
        graph = hard_instance(8)
        breakdown = classify_failure(graph, {0, 1, 4, 5, 6, 7, 2})
        assert not breakdown["valid"]
        assert breakdown["both_joined_pairs"] == 1

    def test_classify_neither_joined(self):
        graph = hard_instance(8)
        breakdown = classify_failure(graph, {4, 5, 6, 7})
        assert breakdown["neither_joined_pairs"] == 2

    def test_classify_missing_isolated(self):
        graph = hard_instance(8)
        breakdown = classify_failure(graph, {0, 2})
        assert breakdown["missing_isolated"] == 4


class TestAnalytic:
    def test_thm1_bound_at_zero_budget(self):
        assert theorem1_failure_lower_bound(64, 0) == pytest.approx(
            1 - math.exp(-16.0)
        )

    def test_bounds_decreasing_in_budget(self):
        values = [theorem1_failure_lower_bound(64, b) for b in range(12)]
        assert values == sorted(values, reverse=True)

    def test_pair_bound_dominates_exponential_bound(self):
        for b in range(10):
            assert theorem1_exact_pair_bound(64, b) >= theorem1_failure_lower_bound(
                64, b
            )

    def test_coin_failure_dominates_thm1_bound(self):
        # The coin strategy is a *specific* member of the budget-b family,
        # so its failure law sits above the universal lower bound.
        for b in range(12):
            assert sync_coin_failure(256, b) >= theorem1_failure_lower_bound(256, b)

    def test_pair_failure(self):
        assert sync_coin_pair_failure(0) == 1.0
        assert sync_coin_pair_failure(3) == pytest.approx(1 / 8)

    def test_min_budget_scales_like_half_log(self):
        # Theorem 1: ~(1/2) log2 n at the e^{-1/4} threshold.
        for n in (64, 256, 1024, 4096):
            budget = min_budget_for_success(n)
            assert 0.4 * math.log2(n) <= budget <= 0.9 * math.log2(n) + 2

    def test_input_validation(self):
        with pytest.raises(ConfigurationError):
            theorem1_failure_lower_bound(30, 1)  # not multiple of 4
        with pytest.raises(ConfigurationError):
            theorem1_failure_lower_bound(32, -1)
        with pytest.raises(ConfigurationError):
            sync_coin_pair_failure(-1)
        with pytest.raises(ConfigurationError):
            min_budget_for_success(64, target_failure=1.5)

    def test_threshold_value(self):
        assert SUCCESS_THRESHOLD == pytest.approx(math.exp(-0.25))

    @given(st.integers(1, 12), st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_bounds_in_unit_interval(self, n4, budget):
        n = 4 * n4
        for value in (
            theorem1_failure_lower_bound(n, budget),
            theorem1_exact_pair_bound(n, budget),
            sync_coin_failure(n, budget),
        ):
            assert 0.0 <= value <= 1.0


class TestStrategies:
    def test_budget_respected_sync(self):
        graph = hard_instance(16)
        for budget in (0, 1, 3, 7):
            result = run_protocol(graph, SynchronizedCoinStrategy(budget), CD, seed=1)
            assert result.max_energy <= budget
            assert not result.undecided

    def test_budget_respected_spread(self):
        graph = hard_instance(16)
        result = run_protocol(graph, SpreadCoinStrategy(4, horizon=32), CD, seed=1)
        assert result.max_energy <= 4
        assert result.rounds <= 33

    def test_budget_respected_capped_cd_mis(self, fast_constants):
        graph = hard_instance(16)
        for budget in (1, 4, 8):
            protocol = EnergyCappedCDMIS(budget, constants=fast_constants)
            result = run_protocol(graph, protocol, CD, seed=2)
            assert result.max_energy <= budget
            assert not result.undecided

    def test_zero_budget_everyone_joins(self):
        graph = hard_instance(8)
        result = run_protocol(graph, SynchronizedCoinStrategy(0), CD, seed=3)
        assert result.mis == frozenset(range(8))

    def test_isolated_nodes_always_join(self):
        graph = hard_instance(16)
        result = run_protocol(graph, SynchronizedCoinStrategy(6), CD, seed=4)
        for node in isolated_nodes(graph):
            assert node in result.mis

    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            SynchronizedCoinStrategy(-1)
        with pytest.raises(ConfigurationError):
            SpreadCoinStrategy(-1, 10)
        with pytest.raises(ConfigurationError):
            SpreadCoinStrategy(5, 3)  # horizon < budget
        with pytest.raises(ConfigurationError):
            EnergyCappedCDMIS(-2)

    def test_capped_cd_mis_with_large_budget_is_correct(self, fast_constants):
        # With a generous budget, the cap never binds and Algorithm 1's
        # correctness shines through.
        graph = hard_instance(32)
        protocol = EnergyCappedCDMIS(10_000, constants=fast_constants)
        failures = sum(
            0 if run_protocol(graph, protocol, CD, seed=s).is_valid_mis() else 1
            for s in range(20)
        )
        assert failures <= 1


class TestExperiment:
    def test_report_structure(self):
        report = run_lower_bound_experiment(
            16, budgets=(1, 4), strategy_factory=SynchronizedCoinStrategy, trials=10
        )
        assert report.n == 16
        assert [point.budget for point in report.points] == [1, 4]
        assert all(point.trials == 10 for point in report.points)
        rows = report.rows()
        assert {"b", "empirical", "thm1_bound"} <= set(rows[0])

    def test_empirical_failure_decreases_with_budget(self):
        report = run_lower_bound_experiment(
            64,
            budgets=(1, 12),
            strategy_factory=SynchronizedCoinStrategy,
            trials=40,
        )
        assert report.points[0].empirical_failure > report.points[1].empirical_failure

    def test_empirical_tracks_exact_coin_law(self):
        # At b=2 the exact law for n=64 is 1-(3/4)^16 ~ 0.99.
        report = run_lower_bound_experiment(
            64, budgets=(2,), strategy_factory=SynchronizedCoinStrategy, trials=60
        )
        point = report.points[0]
        assert point.empirical_failure >= 0.85

    def test_max_energy_within_budget(self):
        report = run_lower_bound_experiment(
            32, budgets=(3,), strategy_factory=SynchronizedCoinStrategy, trials=10
        )
        assert report.points[0].max_energy_seen <= 3
