"""Tests for Algorithm 2 (no-CD energy-efficient MIS)."""

import pytest

from repro.constants import ConstantsProfile
from repro.core import NoCDEnergyMISProtocol
from repro.core.nocd_mis import LubyPhaseSchedule
from repro.graphs import (
    complete_graph,
    cycle_graph,
    empty_graph,
    gnp_random_graph,
    matching_plus_isolated_graph,
    path_graph,
    star_graph,
)
from repro.radio import CD, NO_CD, Decision, run_protocol


@pytest.fixture(scope="module")
def constants():
    return ConstantsProfile.fast()


class TestSchedule:
    def test_budget_composition(self, constants):
        schedule = LubyPhaseSchedule(64, 10, constants)
        assert schedule.tl == (
            schedule.tc + 2 * schedule.tb_deep + schedule.tg + schedule.tb_shallow
        )

    def test_phase_starts_are_multiples(self, constants):
        schedule = LubyPhaseSchedule(64, 10, constants)
        assert schedule.phase_start(0) == 0
        assert schedule.phase_start(3) == 3 * schedule.tl

    def test_total_rounds(self, constants):
        schedule = LubyPhaseSchedule(64, 10, constants)
        assert schedule.total_rounds == schedule.phases * schedule.tl

    def test_committed_degree_capped_by_delta(self, constants):
        schedule = LubyPhaseSchedule(256, 2, constants)
        assert schedule.committed_degree == 2

    def test_delta_floor(self, constants):
        schedule = LubyPhaseSchedule(16, 0, constants)
        assert schedule.delta == 1

    def test_repr_mentions_budgets(self, constants):
        assert "tl=" in repr(LubyPhaseSchedule(16, 4, constants))


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(4))
    def test_valid_on_random_graph(self, constants, seed):
        graph = gnp_random_graph(40, 0.12, seed=seed)
        result = run_protocol(
            graph, NoCDEnergyMISProtocol(constants=constants), NO_CD, seed=seed + 50
        )
        assert result.is_valid_mis()

    def test_valid_on_structures(self, constants):
        for graph in (
            empty_graph(5),
            path_graph(12),
            cycle_graph(9),
            star_graph(10),
            complete_graph(8),
            matching_plus_isolated_graph(16),
        ):
            result = run_protocol(
                graph, NoCDEnergyMISProtocol(constants=constants), NO_CD, seed=17
            )
            assert result.is_valid_mis(), graph.name

    def test_runs_under_cd_model_too(self, constants):
        # CD gives strictly more information; the algorithm still works.
        graph = gnp_random_graph(24, 0.2, seed=3)
        result = run_protocol(
            graph, NoCDEnergyMISProtocol(constants=constants), CD, seed=3
        )
        assert result.is_valid_mis()

    def test_failure_rate_small(self, constants):
        graph = gnp_random_graph(32, 0.15, seed=0)
        failures = sum(
            0
            if run_protocol(
                graph, NoCDEnergyMISProtocol(constants=constants), NO_CD, seed=s
            ).is_valid_mis()
            else 1
            for s in range(25)
        )
        assert failures <= 2


class TestTiming:
    def test_round_budget_respected(self, constants):
        graph = gnp_random_graph(32, 0.15, seed=1)
        protocol = NoCDEnergyMISProtocol(constants=constants)
        result = run_protocol(graph, protocol, NO_CD, seed=1)
        schedule = protocol.schedule_for(32, graph.max_degree())
        assert result.rounds <= schedule.total_rounds

    def test_terminations_at_phase_boundaries_only(self, constants):
        # Every node's finish round must fall on a segment boundary of
        # some phase (termination points are deterministic offsets).
        graph = gnp_random_graph(24, 0.2, seed=2)
        protocol = NoCDEnergyMISProtocol(constants=constants)
        result = run_protocol(graph, protocol, NO_CD, seed=2)
        schedule = protocol.schedule_for(24, graph.max_degree())
        valid_offsets = set()
        for phase in range(schedule.phases):
            start = schedule.phase_start(phase)
            deep1_end = start + schedule.tc + schedule.tb_deep
            deep2_end = deep1_end + schedule.tb_deep
            ldm_window_end = start + schedule.tc + 2 * schedule.tb_deep + schedule.tg
            shallow_end = start + schedule.tl
            # Early exits: after deep check 1, during/after LowDegreeMIS,
            # after the shallow check; plus the final phase end.
            valid_offsets.add(deep1_end)
            valid_offsets.update(range(deep2_end, ldm_window_end + 1))
            valid_offsets.add(shallow_end)
        for stats in result.node_stats:
            assert stats.finish_round in valid_offsets, stats

    def test_delta_override_changes_budget(self, constants):
        protocol_small = NoCDEnergyMISProtocol(constants=constants, delta=4)
        protocol_large = NoCDEnergyMISProtocol(constants=constants, delta=64)
        assert protocol_small.max_rounds_hint(32, 4) < protocol_large.max_rounds_hint(
            32, 4
        )

    def test_delta_override_still_correct(self, constants):
        # Using Delta = n (the "unknown Delta" regime) must stay valid.
        graph = path_graph(10)
        protocol = NoCDEnergyMISProtocol(constants=constants, delta=10)
        result = run_protocol(graph, protocol, NO_CD, seed=4)
        assert result.is_valid_mis()


class TestEnergy:
    def test_energy_well_below_rounds(self, constants):
        # The whole point: awake rounds are orders of magnitude below
        # the round complexity.
        graph = gnp_random_graph(48, 0.1, seed=5)
        result = run_protocol(
            graph, NoCDEnergyMISProtocol(constants=constants), NO_CD, seed=5
        )
        assert result.max_energy * 5 < result.rounds

    def test_component_ledger_populated(self, constants):
        graph = gnp_random_graph(24, 0.2, seed=6)
        result = run_protocol(
            graph, NoCDEnergyMISProtocol(constants=constants), NO_CD, seed=6
        )
        components = result.energy_by_component()
        assert "competition-listen" in components
        assert "competition-send" in components

    def test_energy_cap_enforced(self, constants):
        graph = gnp_random_graph(24, 0.2, seed=7)
        cap = 50
        protocol = NoCDEnergyMISProtocol(constants=constants, energy_cap=cap)
        result = run_protocol(graph, protocol, NO_CD, seed=7)
        schedule = protocol.schedule_for(24, graph.max_degree())
        # A node may overshoot within the phase it crossed the cap, but
        # never by more than one phase's worth of awake rounds.
        per_phase_ceiling = schedule.tc + 2 * schedule.tb_deep + schedule.tg
        for stats in result.node_stats:
            assert stats.awake_rounds <= cap + per_phase_ceiling

    def test_energy_cap_forces_decisions(self, constants):
        graph = complete_graph(12)
        protocol = NoCDEnergyMISProtocol(constants=constants, energy_cap=1)
        result = run_protocol(graph, protocol, NO_CD, seed=8)
        assert not result.undecided  # every node decided (arbitrarily)


class TestInstrumentation:
    def test_phase_log_shapes(self, constants):
        graph = gnp_random_graph(20, 0.2, seed=9)
        protocol = NoCDEnergyMISProtocol(constants=constants, instrument=True)
        result = run_protocol(graph, protocol, NO_CD, seed=9)
        for info in result.node_info:
            assert "phase_log" in info
            for entry in info["phase_log"]:
                assert "phase" in entry
                if "competition_status" in entry:
                    assert entry["competition_status"] in ("win", "commit", "lose")

    def test_out_nodes_have_decided_phase(self, constants):
        graph = gnp_random_graph(20, 0.2, seed=10)
        protocol = NoCDEnergyMISProtocol(constants=constants, instrument=True)
        result = run_protocol(graph, protocol, NO_CD, seed=10)
        for stats, info in zip(result.node_stats, result.node_info):
            if stats.decision is Decision.OUT_MIS:
                assert info["decided_phase"] is not None

    def test_mis_nodes_survive_to_the_end(self, constants):
        # MIS nodes never terminate early: their finish round is the
        # last phase boundary.
        graph = gnp_random_graph(20, 0.2, seed=11)
        protocol = NoCDEnergyMISProtocol(constants=constants)
        result = run_protocol(graph, protocol, NO_CD, seed=11)
        schedule = protocol.schedule_for(20, graph.max_degree())
        for stats in result.node_stats:
            if stats.decision is Decision.IN_MIS:
                assert stats.finish_round == schedule.total_rounds
