"""Tests for Algorithm 1 (CD MIS) and its beeping variant."""

import math

import pytest

from repro.constants import ConstantsProfile
from repro.core import BeepingMISProtocol, CDMISProtocol
from repro.graphs import (
    complete_graph,
    cycle_graph,
    empty_graph,
    gnp_random_graph,
    matching_plus_isolated_graph,
    path_graph,
    star_graph,
)
from repro.radio import BEEPING, CD, Decision, run_protocol


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(5))
    def test_valid_on_random_graph(self, fast_constants, seed):
        graph = gnp_random_graph(48, 0.15, seed=seed)
        result = run_protocol(
            graph, CDMISProtocol(constants=fast_constants), CD, seed=seed
        )
        assert result.is_valid_mis()

    def test_valid_on_small_suite(self, fast_constants, small_graphs):
        for graph in small_graphs:
            result = run_protocol(
                graph, CDMISProtocol(constants=fast_constants), CD, seed=11
            )
            assert result.is_valid_mis(), graph.name

    def test_isolated_nodes_always_join(self, fast_constants):
        graph = empty_graph(6)
        result = run_protocol(
            graph, CDMISProtocol(constants=fast_constants), CD, seed=0
        )
        assert result.mis == frozenset(range(6))

    def test_clique_selects_exactly_one(self, fast_constants):
        for seed in range(5):
            result = run_protocol(
                complete_graph(12), CDMISProtocol(constants=fast_constants), CD, seed=seed
            )
            assert result.is_valid_mis()
            assert len(result.mis) == 1

    def test_star_valid(self, fast_constants):
        # Either the hub alone or all leaves.
        result = run_protocol(
            star_graph(12), CDMISProtocol(constants=fast_constants), CD, seed=2
        )
        assert result.is_valid_mis()
        assert result.mis == frozenset({0}) or result.mis == frozenset(range(1, 12))

    def test_hard_instance(self, fast_constants):
        graph = matching_plus_isolated_graph(24)
        result = run_protocol(
            graph, CDMISProtocol(constants=fast_constants), CD, seed=1
        )
        assert result.is_valid_mis()

    def test_failure_rate_small(self, fast_constants):
        graph = gnp_random_graph(40, 0.15, seed=0)
        failures = sum(
            0
            if run_protocol(
                graph, CDMISProtocol(constants=fast_constants), CD, seed=s
            ).is_valid_mis()
            else 1
            for s in range(40)
        )
        assert failures <= 2


class TestEnergyAndRounds:
    def test_round_budget_respected(self, fast_constants):
        graph = gnp_random_graph(64, 0.1, seed=1)
        protocol = CDMISProtocol(constants=fast_constants)
        result = run_protocol(graph, protocol, CD, seed=1)
        assert result.rounds <= protocol.max_rounds_hint(64, graph.max_degree())

    def test_phase_alignment(self, fast_constants):
        # Every decision lands at a phase boundary: finish rounds are
        # multiples of (bits + 1).
        graph = gnp_random_graph(32, 0.2, seed=2)
        protocol = CDMISProtocol(constants=fast_constants)
        result = run_protocol(graph, protocol, CD, seed=2)
        phase_length = fast_constants.rank_bits(32) + 1
        for stats in result.node_stats:
            assert stats.finish_round % phase_length == 0

    def test_energy_scales_like_log_n(self, practical_constants):
        # Theorem 2's shape check: energy at n=512 stays within a small
        # factor of energy at n=64 (log growth), far below the 8x a
        # linear dependence would give.
        energies = {}
        for n in (64, 512):
            graph = gnp_random_graph(n, 8.0 / (n - 1), seed=3)
            result = run_protocol(
                graph, CDMISProtocol(constants=practical_constants), CD, seed=3
            )
            energies[n] = result.max_energy
        assert energies[512] <= 2.5 * energies[64]

    def test_winner_energy_within_one_phase_of_losers(self, fast_constants):
        # Late rounds fit inside a single Luby phase (Theorem 2 proof).
        graph = complete_graph(10)
        result = run_protocol(
            graph, CDMISProtocol(constants=fast_constants), CD, seed=4
        )
        bits = fast_constants.rank_bits(10)
        winner = next(iter(result.mis))
        assert result.node_stats[winner].awake_rounds <= result.rounds


class TestInstrumentation:
    def test_phase_log_recorded(self, fast_constants):
        graph = path_graph(6)
        protocol = CDMISProtocol(constants=fast_constants, instrument=True)
        result = run_protocol(graph, protocol, CD, seed=3)
        for node, info in enumerate(result.node_info):
            assert "phase_log" in info
            assert info["decided_phase"] is not None
            last = info["phase_log"][-1]
            assert last["outcome"] in ("win", "dominated")

    def test_no_instrumentation_by_default(self, fast_constants):
        result = run_protocol(
            path_graph(4), CDMISProtocol(constants=fast_constants), CD, seed=3
        )
        assert all("phase_log" not in info for info in result.node_info)

    def test_decided_phase_monotone_with_outcome(self, fast_constants):
        graph = gnp_random_graph(24, 0.2, seed=6)
        protocol = CDMISProtocol(constants=fast_constants, instrument=True)
        result = run_protocol(graph, protocol, CD, seed=6)
        for info in result.node_info:
            phases = [entry["phase"] for entry in info["phase_log"]]
            assert phases == sorted(phases)


class TestBeepingEquivalence:
    def test_identical_trajectories_in_cd_and_beep(self, fast_constants):
        # Algorithm 1 only tests "heard anything", which CD and beeping
        # answer identically — so the whole run must coincide per seed.
        graph = gnp_random_graph(32, 0.15, seed=8)
        cd_result = run_protocol(
            graph, CDMISProtocol(constants=fast_constants), CD, seed=8
        )
        beep_result = run_protocol(
            graph, BeepingMISProtocol(constants=fast_constants), BEEPING, seed=8
        )
        assert cd_result.mis == beep_result.mis
        assert cd_result.rounds == beep_result.rounds
        assert [s.awake_rounds for s in cd_result.node_stats] == [
            s.awake_rounds for s in beep_result.node_stats
        ]

    def test_beeping_valid(self, fast_constants, small_graphs):
        for graph in small_graphs:
            result = run_protocol(
                graph, BeepingMISProtocol(constants=fast_constants), BEEPING, seed=9
            )
            assert result.is_valid_mis(), graph.name

    def test_cd_protocol_also_runs_on_beep_model(self, fast_constants):
        result = run_protocol(
            cycle_graph(9), CDMISProtocol(constants=fast_constants), BEEPING, seed=1
        )
        assert result.is_valid_mis()


class TestUnaryCommunication:
    def test_only_ones_transmitted(self, fast_constants):
        from repro.radio import TraceRecorder

        trace = TraceRecorder()
        run_protocol(
            gnp_random_graph(24, 0.2, seed=4),
            CDMISProtocol(constants=fast_constants),
            CD,
            seed=4,
            trace=trace,
        )
        payloads = {event.payload for event in trace.transmissions()}
        assert payloads == {1}

    def test_fits_radio_congest(self, fast_constants):
        # Unary messages trivially satisfy any positive bit budget.
        result = run_protocol(
            path_graph(8),
            CDMISProtocol(constants=fast_constants),
            CD,
            seed=4,
            message_bits=1,
        )
        assert result.is_valid_mis()
