"""Tests for LowDegreeMIS (the §4.2 subroutine and standalone protocol)."""

import pytest

from repro.constants import ConstantsProfile
from repro.core.backoff import backoff_rounds
from repro.core.low_degree_mis import (
    DOMINATED,
    JOINED,
    UNDECIDED,
    LowDegreeMISProtocol,
    low_degree_mis,
    low_degree_mis_rounds,
)
from repro.graphs import (
    complete_graph,
    cycle_graph,
    empty_graph,
    gnp_random_graph,
    path_graph,
    star_graph,
)
from repro.radio import NO_CD, Decision, Protocol, run_protocol


@pytest.fixture(scope="module")
def constants():
    return ConstantsProfile.fast()


class SubroutineProbe(Protocol):
    """Run the bare subroutine and record outcome + rounds used."""

    name = "ldm-probe"
    compatible_models = ("no-cd",)

    def __init__(self, constants, degree_bound):
        self.constants = constants
        self.degree_bound = degree_bound

    def run(self, ctx):
        start = ctx.now
        outcome = yield from low_degree_mis(ctx, self.degree_bound, self.constants)
        ctx.info["outcome"] = outcome
        ctx.info["rounds_used"] = ctx.now - start


class TestRoundBudget:
    def test_budget_formula(self, constants):
        n, degree = 64, 12
        expected = (
            constants.low_degree_iterations(n)
            * 2
            * backoff_rounds(constants.deep_check_iterations(n), degree)
        )
        assert low_degree_mis_rounds(n, degree, constants) == expected

    def test_full_run_consumes_exact_budget(self, constants):
        # Joined and never-dominated nodes consume the full budget.
        graph = empty_graph(3)
        result = run_protocol(graph, SubroutineProbe(constants, 4), NO_CD, seed=1)
        budget = low_degree_mis_rounds(3, 4, constants)
        for info in result.node_info:
            assert info["outcome"] == JOINED
            assert info["rounds_used"] == budget

    def test_dominated_may_exit_early(self, constants):
        results = []
        for seed in range(10):
            result = run_protocol(
                complete_graph(6), SubroutineProbe(constants, 5), NO_CD, seed=seed
            )
            results.extend(result.node_info)
        dominated = [info for info in results if info["outcome"] == DOMINATED]
        assert dominated
        budget = low_degree_mis_rounds(6, 5, constants)
        assert any(info["rounds_used"] < budget for info in dominated)


class TestSubroutineOutcomes:
    def test_isolated_participant_joins(self, constants):
        result = run_protocol(
            empty_graph(1), SubroutineProbe(constants, 2), NO_CD, seed=0
        )
        assert result.node_info[0]["outcome"] == JOINED

    def test_pair_splits(self, constants):
        outcomes = []
        for seed in range(15):
            result = run_protocol(
                path_graph(2), SubroutineProbe(constants, 2), NO_CD, seed=seed
            )
            outcomes.append(
                tuple(sorted(info["outcome"] for info in result.node_info))
            )
        # The common outcome: one joined, one dominated.  At n=2 the fast
        # profile runs only k=3 backoff iterations, so a (1/2)^3 mutual
        # miss (both join) shows up occasionally.
        assert outcomes.count((DOMINATED, JOINED)) >= 11

    def test_outcome_vocabulary(self, constants):
        for seed in range(5):
            result = run_protocol(
                gnp_random_graph(16, 0.2, seed=seed),
                SubroutineProbe(constants, 8),
                NO_CD,
                seed=seed,
            )
            for info in result.node_info:
                assert info["outcome"] in (JOINED, DOMINATED, UNDECIDED)


class TestStandaloneProtocol:
    @pytest.mark.parametrize("seed", range(4))
    def test_valid_on_random_graphs(self, constants, seed):
        graph = gnp_random_graph(32, 0.15, seed=seed)
        result = run_protocol(
            graph, LowDegreeMISProtocol(constants=constants), NO_CD, seed=seed + 100
        )
        assert result.is_valid_mis()

    def test_valid_on_structures(self, constants):
        for graph in (path_graph(10), cycle_graph(9), star_graph(8), complete_graph(6)):
            result = run_protocol(
                graph, LowDegreeMISProtocol(constants=constants), NO_CD, seed=3
            )
            assert result.is_valid_mis(), graph.name

    def test_respects_round_hint(self, constants):
        graph = gnp_random_graph(32, 0.15, seed=2)
        protocol = LowDegreeMISProtocol(constants=constants)
        result = run_protocol(graph, protocol, NO_CD, seed=5)
        assert result.rounds <= protocol.max_rounds_hint(32, graph.max_degree())

    def test_degree_bound_override(self, constants):
        # A tighter (still valid) bound shrinks the round budget.
        graph = path_graph(8)  # Delta = 2
        tight = LowDegreeMISProtocol(constants=constants, degree_bound=2)
        loose = LowDegreeMISProtocol(constants=constants, degree_bound=64)
        tight_result = run_protocol(graph, tight, NO_CD, seed=7)
        loose_result = run_protocol(graph, loose, NO_CD, seed=7)
        assert tight_result.is_valid_mis()
        assert tight_result.rounds < loose_result.rounds

    def test_outcome_recorded_in_info(self, constants):
        result = run_protocol(
            path_graph(4), LowDegreeMISProtocol(constants=constants), NO_CD, seed=2
        )
        assert all("low_degree_outcome" in info for info in result.node_info)

    def test_decisions_match_outcomes(self, constants):
        result = run_protocol(
            gnp_random_graph(20, 0.2, seed=4),
            LowDegreeMISProtocol(constants=constants),
            NO_CD,
            seed=4,
        )
        for stats, info in zip(result.node_stats, result.node_info):
            outcome = info["low_degree_outcome"]
            if outcome == JOINED:
                assert stats.decision is Decision.IN_MIS
            elif outcome == DOMINATED:
                assert stats.decision is Decision.OUT_MIS
            else:
                assert stats.decision is Decision.UNDECIDED
