"""Tests for the unknown-Delta doubling scheme (§1.1 footnote)."""

import pytest

from repro.constants import ConstantsProfile
from repro.core import NoCDEnergyMISProtocol, UnknownDeltaMISProtocol, delta_guesses
from repro.graphs import (
    complete_graph,
    empty_graph,
    gnp_random_graph,
    path_graph,
    star_graph,
)
from repro.radio import NO_CD, run_protocol


@pytest.fixture(scope="module")
def constants():
    return ConstantsProfile.fast()


class TestGuessLadder:
    def test_doubly_exponential(self):
        assert delta_guesses(1000) == [2, 4, 16, 256, 999]

    def test_small_networks(self):
        assert delta_guesses(1) == [1]
        assert delta_guesses(2) == [1]
        assert delta_guesses(3) == [2]
        assert delta_guesses(5) == [2, 4]

    def test_ladder_covers_max_degree(self):
        for n in (2, 7, 64, 500, 4096):
            assert delta_guesses(n)[-1] == max(1, n - 1)

    def test_ladder_is_short(self):
        # O(loglog n) guesses.
        assert len(delta_guesses(1 << 16)) <= 6


class TestEpochPlan:
    def test_epochs_tile_the_timeline(self, constants):
        protocol = UnknownDeltaMISProtocol(constants=constants)
        plans = protocol.plan(64)
        assert plans[0].start == 0
        for previous, current in zip(plans, plans[1:]):
            assert current.start == previous.end
        assert protocol.max_rounds_hint(64, 63) == plans[-1].end + 1

    def test_verification_segments_ordered(self, constants):
        protocol = UnknownDeltaMISProtocol(constants=constants)
        for plan in protocol.plan(32):
            assert plan.start < plan.verify_a_start < plan.verify_b_start < plan.end


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(4))
    def test_valid_on_random_graphs(self, constants, seed):
        graph = gnp_random_graph(48, 0.2, seed=seed)
        protocol = UnknownDeltaMISProtocol(constants=constants)
        result = run_protocol(graph, protocol, NO_CD, seed=seed)
        assert result.is_valid_mis()

    def test_valid_when_guesses_undershoot(self, constants):
        # Star: Delta = 63 while the first guesses are 2, 4, 16 — the
        # exact regime the verification machinery exists for.
        graph = star_graph(64)
        for seed in range(5):
            result = run_protocol(
                graph, UnknownDeltaMISProtocol(constants=constants), NO_CD, seed=seed
            )
            assert result.is_valid_mis()

    def test_structures(self, constants):
        for graph in (empty_graph(4), path_graph(10), complete_graph(12)):
            result = run_protocol(
                graph, UnknownDeltaMISProtocol(constants=constants), NO_CD, seed=3
            )
            assert result.is_valid_mis(), graph.name

    def test_round_hint_respected(self, constants):
        graph = gnp_random_graph(32, 0.2, seed=1)
        protocol = UnknownDeltaMISProtocol(constants=constants)
        result = run_protocol(graph, protocol, NO_CD, seed=1)
        assert result.rounds <= protocol.max_rounds_hint(32, graph.max_degree())


class TestOverhead:
    def test_energy_overhead_is_moderate(self, constants):
        # The footnote claims an O(loglog n) factor over the known-Delta
        # algorithm; check the measured factor stays in single digits.
        graph = gnp_random_graph(48, 0.2, seed=5)
        known = run_protocol(
            graph, NoCDEnergyMISProtocol(constants=constants), NO_CD, seed=5
        )
        unknown = run_protocol(
            graph, UnknownDeltaMISProtocol(constants=constants), NO_CD, seed=5
        )
        assert unknown.max_energy <= 8 * known.max_energy

    def test_verification_components_ledgered(self, constants):
        graph = star_graph(32)
        result = run_protocol(
            graph, UnknownDeltaMISProtocol(constants=constants), NO_CD, seed=2
        )
        components = result.energy_by_component()
        assert "verify-listen" in components or "verify-conflict" in components
        assert "verify-announce" in components

    def test_epoch_log_instrumentation(self, constants):
        graph = star_graph(32)
        protocol = UnknownDeltaMISProtocol(constants=constants, instrument=True)
        result = run_protocol(graph, protocol, NO_CD, seed=2)
        logs = [info.get("epoch_log") for info in result.node_info]
        assert all(log is not None for log in logs)
        assert any(log for log in logs)  # someone recorded epochs
