"""Tests for rank bitstring helpers."""

import random
from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ranks import (
    draw_rank,
    first_zero_index,
    int_to_rank,
    is_local_maximum,
    leading_ones,
    local_maxima,
    rank_to_int,
)
from repro.graphs import Graph, path_graph


class TestConversions:
    def test_rank_to_int_msb_first(self):
        assert rank_to_int([1, 0, 1]) == 5
        assert rank_to_int([0, 0, 0]) == 0
        assert rank_to_int([]) == 0

    def test_int_to_rank(self):
        assert int_to_rank(5, 3) == [1, 0, 1]
        assert int_to_rank(0, 4) == [0, 0, 0, 0]

    @given(st.integers(0, 2**16 - 1))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip(self, value):
        assert rank_to_int(int_to_rank(value, 16)) == value

    @given(st.lists(st.integers(0, 1), max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_inverse_roundtrip(self, bits):
        assert int_to_rank(rank_to_int(bits), len(bits)) == bits


class TestDrawRank:
    def test_length(self):
        rank = draw_rank(random.Random(0), 12)
        assert len(rank) == 12
        assert set(rank) <= {0, 1}

    def test_zero_bits(self):
        assert draw_rank(random.Random(0), 0) == []

    def test_roughly_uniform_bits(self):
        rng = random.Random(1)
        counts = Counter()
        for _ in range(500):
            counts.update(draw_rank(rng, 8))
        total = sum(counts.values())
        assert abs(counts[1] / total - 0.5) < 0.05

    def test_deterministic_per_seed(self):
        assert draw_rank(random.Random(5), 16) == draw_rank(random.Random(5), 16)


class TestBitPredicates:
    def test_leading_ones(self):
        assert leading_ones([1, 1, 0, 1]) == 2
        assert leading_ones([0, 1]) == 0
        assert leading_ones([1, 1, 1]) == 3
        assert leading_ones([]) == 0

    def test_first_zero_index(self):
        assert first_zero_index([1, 1, 0, 1]) == 2
        assert first_zero_index([0]) == 0
        assert first_zero_index([1, 1]) == 2  # all ones -> len

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_leading_ones_equals_first_zero(self, bits):
        assert leading_ones(bits) == first_zero_index(bits)


class TestLocalMaxima:
    def test_path_maxima(self):
        graph = path_graph(4)
        ranks = {0: 5, 1: 9, 2: 2, 3: 7}
        assert is_local_maximum(graph, 1, ranks)
        assert is_local_maximum(graph, 3, ranks)
        assert not is_local_maximum(graph, 0, ranks)
        assert set(local_maxima(graph, ranks)) == {1, 3}

    def test_ties_are_not_maxima(self):
        graph = path_graph(2)
        ranks = {0: 4, 1: 4}
        assert local_maxima(graph, ranks) == []

    def test_non_participating_neighbors_ignored(self):
        graph = path_graph(3)
        ranks = {0: 1, 1: 2}  # node 2 absent
        assert is_local_maximum(graph, 1, ranks)

    def test_isolated_node_is_maximum(self):
        graph = Graph(2, [])
        assert is_local_maximum(graph, 0, {0: 0, 1: 5})

    def test_maxima_form_independent_set(self):
        rng = random.Random(3)
        from repro.graphs import gnp_random_graph

        graph = gnp_random_graph(30, 0.2, seed=2)
        ranks = {v: rng.randrange(1 << 20) for v in graph.nodes}
        maxima = local_maxima(graph, ranks)
        assert graph.is_independent_set(maxima)
