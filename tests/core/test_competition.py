"""Tests for the Competition subroutine (Algorithm 3)."""

import pytest

from repro.constants import ConstantsProfile
from repro.core.backoff import backoff_rounds
from repro.core.competition import (
    COMMIT,
    LOSE,
    WIN,
    competition,
    competition_rounds,
)
from repro.graphs import complete_graph, empty_graph, gnp_random_graph, path_graph
from repro.radio import NO_CD, Protocol, run_protocol


class CompetitionProbe(Protocol):
    """Run exactly one competition per node and record the outcome."""

    name = "competition-probe"
    compatible_models = ("no-cd", "cd")

    def __init__(self, constants, delta=None, mute=False):
        self.constants = constants
        self.delta = delta
        self.mute = mute

    def run(self, ctx):
        delta = max(1, self.delta if self.delta is not None else ctx.delta)
        start = ctx.now
        outcome = yield from competition(
            ctx, delta, self.constants, mute_committed_on_hear=self.mute
        )
        ctx.info["outcome"] = outcome
        ctx.info["rounds_used"] = ctx.now - start
        ctx.info["delta"] = delta


def run_competition(graph, constants, seed=0, delta=None, mute=False):
    return run_protocol(
        graph, CompetitionProbe(constants, delta, mute), NO_CD, seed=seed
    )


@pytest.fixture(scope="module")
def constants():
    return ConstantsProfile.fast()


class TestRoundBudget:
    def test_all_paths_consume_exact_budget(self, constants):
        graph = gnp_random_graph(24, 0.2, seed=1)
        result = run_competition(graph, constants, seed=1)
        delta = graph.max_degree()
        expected = competition_rounds(24, delta, constants)
        for info in result.node_info:
            assert info["rounds_used"] == expected

    def test_budget_formula(self, constants):
        n, delta = 64, 10
        expected = constants.rank_bits(n) * backoff_rounds(
            constants.deep_check_iterations(n), delta
        )
        assert competition_rounds(n, delta, constants) == expected

    def test_nodes_stay_synchronized(self, constants):
        graph = complete_graph(8)
        result = run_competition(graph, constants, seed=2)
        finishes = {stats.finish_round for stats in result.node_stats}
        assert len(finishes) == 1


class TestOutcomes:
    def test_statuses_are_known(self, constants):
        graph = gnp_random_graph(24, 0.2, seed=3)
        result = run_competition(graph, constants, seed=3)
        for info in result.node_info:
            assert info["outcome"].status in (WIN, COMMIT, LOSE)

    def test_isolated_node_wins_and_commits(self, constants):
        result = run_competition(empty_graph(3), constants, seed=4)
        for info in result.node_info:
            outcome = info["outcome"]
            assert outcome.status == WIN
            assert not outcome.heard
            # It commits at its first 0-bit unless the rank is all ones.
            if outcome.rank != (1 << constants.rank_bits(3)) - 1:
                assert outcome.committed

    def test_winners_heard_nothing(self, constants):
        graph = gnp_random_graph(30, 0.15, seed=5)
        result = run_competition(graph, constants, seed=5)
        for info in result.node_info:
            outcome = info["outcome"]
            if outcome.status == WIN:
                assert not outcome.heard
            else:
                assert outcome.heard

    def test_losers_never_committed(self, constants):
        graph = gnp_random_graph(30, 0.15, seed=6)
        result = run_competition(graph, constants, seed=6)
        for info in result.node_info:
            outcome = info["outcome"]
            if outcome.status == LOSE:
                assert not outcome.committed
                assert outcome.commit_bit is None
            if outcome.status == COMMIT:
                assert outcome.committed
                assert outcome.commit_bit is not None

    def test_clique_produces_at_most_one_winner_usually(self, constants):
        # Adjacent winners require identical effective knock-out runs;
        # count multi-winner competitions across seeds.
        multi = 0
        for seed in range(20):
            result = run_competition(complete_graph(10), constants, seed=seed)
            winners = [
                info["outcome"].status == WIN for info in result.node_info
            ].count(True)
            if winners > 1:
                multi += 1
        assert multi <= 2

    def test_some_winner_exists_usually(self, constants):
        # Lemma 14 consequence: the max-rank node usually wins.
        missing = 0
        for seed in range(20):
            result = run_competition(gnp_random_graph(16, 0.2, seed=seed), constants, seed=seed)
            if not any(info["outcome"].status == WIN for info in result.node_info):
                missing += 1
        assert missing <= 4

    def test_loser_energy_below_full_participation(self, constants):
        # A loser sleeps out the competition from its first informative
        # 0-bit; its energy must be well below the full-listen bill.
        graph = complete_graph(16)
        result = run_competition(graph, constants, seed=7)
        losers = [
            stats
            for stats, info in zip(result.node_stats, result.node_info)
            if info["outcome"].status == LOSE
        ]
        assert losers, "a clique competition should produce losers"
        bits = constants.rank_bits(16)
        k = constants.deep_check_iterations(16)
        full_listen = bits * backoff_rounds(k, graph.max_degree())
        for stats in losers:
            assert stats.awake_rounds < full_listen / 2


class TestDegreeEstimate:
    def test_committed_listens_are_cheaper(self, constants):
        # Committed nodes shrink Delta_est to kappa*log n, so their
        # subsequent listens cost fewer awake rounds than pre-commit
        # listens at large Delta.  Compare total listen energy of a
        # committed isolated node under a huge claimed Delta versus the
        # un-shrunk bound.
        graph = empty_graph(2)
        result = run_competition(graph, constants, seed=8, delta=1024)
        bits = constants.rank_bits(2)
        k = constants.deep_check_iterations(2)
        from repro.core.backoff import backoff_slots

        full = bits * k * backoff_slots(1024)
        for stats, info in zip(result.node_stats, result.node_info):
            if info["outcome"].committed:
                assert stats.listen_rounds < full


class TestMuteAblation:
    def test_mute_changes_nothing_when_no_commits_hear(self, constants):
        # On an edgeless graph nobody hears, so both variants coincide.
        a = run_competition(empty_graph(4), constants, seed=9, mute=False)
        b = run_competition(empty_graph(4), constants, seed=9, mute=True)
        assert [i["outcome"] for i in a.node_info] == [
            i["outcome"] for i in b.node_info
        ]

    def test_mute_budget_still_exact(self, constants):
        graph = gnp_random_graph(20, 0.3, seed=10)
        result = run_competition(graph, constants, seed=10, mute=True)
        expected = competition_rounds(20, graph.max_degree(), constants)
        for info in result.node_info:
            assert info["rounds_used"] == expected
