"""Tests for Algorithm 2's ablation knobs (§5.1 design choices)."""

import pytest

from repro.constants import ConstantsProfile
from repro.core import NoCDEnergyMISProtocol
from repro.core.nocd_mis import LubyPhaseSchedule
from repro.graphs import complete_graph, gnp_random_graph, path_graph
from repro.radio import NO_CD, run_protocol


@pytest.fixture(scope="module")
def constants():
    return ConstantsProfile.fast()


class TestNoCommitAblation:
    def test_schedule_drops_segment3(self, constants):
        with_commit = LubyPhaseSchedule(64, 16, constants)
        without = LubyPhaseSchedule(64, 16, constants, enable_commit=False)
        assert without.tg == 0
        assert without.tl == without.tc + without.tb_deep + without.tb_shallow
        assert without.tl < with_commit.tl

    @pytest.mark.parametrize("seed", range(4))
    def test_still_correct(self, constants, seed):
        graph = gnp_random_graph(32, 0.15, seed=seed)
        protocol = NoCDEnergyMISProtocol(constants=constants, enable_commit=False)
        result = run_protocol(graph, protocol, NO_CD, seed=seed)
        assert result.is_valid_mis()

    def test_no_low_degree_energy(self, constants):
        graph = gnp_random_graph(32, 0.2, seed=2)
        protocol = NoCDEnergyMISProtocol(constants=constants, enable_commit=False)
        result = run_protocol(graph, protocol, NO_CD, seed=2)
        assert "low-degree-mis" not in result.energy_by_component()

    def test_no_commit_statuses(self, constants):
        graph = gnp_random_graph(32, 0.2, seed=3)
        protocol = NoCDEnergyMISProtocol(
            constants=constants, enable_commit=False, instrument=True
        )
        result = run_protocol(graph, protocol, NO_CD, seed=3)
        for info in result.node_info:
            for entry in info.get("phase_log", ()):
                assert entry.get("competition_status") != "commit"
                assert not entry.get("committed")

    def test_rounds_shorter_than_default(self, constants):
        graph = path_graph(12)
        default = NoCDEnergyMISProtocol(constants=constants)
        ablated = NoCDEnergyMISProtocol(constants=constants, enable_commit=False)
        assert (
            ablated.max_rounds_hint(12, 2) < default.max_rounds_hint(12, 2)
        )


class TestAlwaysDeepAblation:
    def test_schedule_inflates_shallow_segment(self, constants):
        deep = constants.deep_check_iterations(64)
        default = LubyPhaseSchedule(64, 16, constants)
        ablated = LubyPhaseSchedule(64, 16, constants, shallow_iterations=deep)
        assert ablated.tb_shallow == default.tb_deep
        assert ablated.tl > default.tl

    @pytest.mark.parametrize("seed", range(3))
    def test_still_correct(self, constants, seed):
        graph = gnp_random_graph(32, 0.15, seed=seed)
        deep = constants.deep_check_iterations(32)
        protocol = NoCDEnergyMISProtocol(
            constants=constants, shallow_iterations=deep
        )
        result = run_protocol(graph, protocol, NO_CD, seed=seed)
        assert result.is_valid_mis()

    def test_costs_more_energy(self, constants):
        graph = complete_graph(16)
        deep = constants.deep_check_iterations(16)
        default = run_protocol(
            graph, NoCDEnergyMISProtocol(constants=constants), NO_CD, seed=5
        )
        ablated = run_protocol(
            graph,
            NoCDEnergyMISProtocol(constants=constants, shallow_iterations=deep),
            NO_CD,
            seed=5,
        )
        assert ablated.total_energy > default.total_energy

    def test_shallow_iterations_floored_at_one(self, constants):
        protocol = NoCDEnergyMISProtocol(constants=constants, shallow_iterations=0)
        assert protocol.shallow_iterations == 1
