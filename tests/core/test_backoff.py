"""Tests for the backoff primitives (Algorithm 4, Lemmas 8-9)."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.backoff import (
    backoff_rounds,
    backoff_slots,
    geometric_slot,
    rec_ebackoff,
    snd_ebackoff,
    snd_rec_ebackoff,
    traditional_decay_receiver,
    traditional_decay_sender,
)
from repro.errors import ProtocolError
from repro.graphs import path_graph, star_graph
from repro.radio import CD, NO_CD, Protocol, Sleep, run_protocol


class RoleBackoffProtocol(Protocol):
    """Run one backoff subroutine per node according to a role map.

    Roles: ``snd``/``rec``/``snd_rec``/``decay_snd``/``decay_rec``/``sleep``.
    Records the subroutine's return value and exact round consumption in
    ``ctx.info``.
    """

    name = "role-backoff"
    compatible_models = ("cd", "no-cd", "beep")

    def __init__(self, roles, k, delta, delta_est=None):
        self.roles = roles
        self.k = k
        self.delta = delta
        self.delta_est = delta_est

    def run(self, ctx):
        role = self.roles.get(ctx.node, "sleep")
        start = ctx.now
        if role == "snd":
            outcome = yield from snd_ebackoff(ctx, self.k, self.delta)
        elif role == "rec":
            outcome = yield from rec_ebackoff(ctx, self.k, self.delta, self.delta_est)
        elif role == "snd_rec":
            outcome = yield from snd_rec_ebackoff(
                ctx, self.k, self.delta, self.delta_est
            )
        elif role == "decay_snd":
            outcome = yield from traditional_decay_sender(ctx, self.k, self.delta)
        elif role == "decay_rec":
            outcome = yield from traditional_decay_receiver(ctx, self.k, self.delta)
        else:
            yield Sleep(backoff_rounds(self.k, self.delta))
            outcome = None
        ctx.info["result"] = outcome
        ctx.info["rounds_used"] = ctx.now - start


def run_roles(graph, roles, k, delta, delta_est=None, seed=0, model=NO_CD):
    protocol = RoleBackoffProtocol(roles, k, delta, delta_est)
    return run_protocol(graph, protocol, model, seed=seed)


class TestBudgetArithmetic:
    @pytest.mark.parametrize(
        "delta,slots", [(0, 2), (1, 2), (2, 2), (3, 3), (4, 3), (8, 4), (9, 5), (100, 8)]
    )
    def test_backoff_slots(self, delta, slots):
        assert backoff_slots(delta) == slots

    @given(st.integers(0, 50), st.integers(0, 200))
    @settings(max_examples=50, deadline=None)
    def test_backoff_rounds_formula(self, k, delta):
        assert backoff_rounds(k, delta) == k * backoff_slots(delta)

    def test_negative_k_rejected(self):
        with pytest.raises(ProtocolError):
            backoff_rounds(-1, 4)


class TestGeometricSlot:
    @given(st.integers(0, 1000), st.integers(1, 12))
    @settings(max_examples=50, deadline=None)
    def test_in_range(self, seed, slots):
        assert 1 <= geometric_slot(random.Random(seed), slots) <= slots

    def test_distribution_matches_geometric(self):
        rng = random.Random(7)
        counts = Counter(geometric_slot(rng, 5) for _ in range(20_000))
        total = 20_000
        assert counts[1] / total == pytest.approx(0.5, abs=0.02)
        assert counts[2] / total == pytest.approx(0.25, abs=0.02)
        # Cap absorbs the tail: P(5) = 2^-4.
        assert counts[5] / total == pytest.approx(1 / 16, abs=0.01)

    def test_single_slot_always_one(self):
        rng = random.Random(1)
        assert all(geometric_slot(rng, 1) == 1 for _ in range(50))


class TestSndEBackoff:
    def test_round_budget_exact(self):
        result = run_roles(path_graph(2), {0: "snd"}, k=6, delta=10)
        assert result.node_info[0]["rounds_used"] == backoff_rounds(6, 10)

    def test_awake_exactly_k_rounds(self):
        # Lemma 8: a sender is awake exactly k rounds.
        result = run_roles(path_graph(2), {0: "snd"}, k=9, delta=30)
        assert result.node_stats[0].awake_rounds == 9
        assert result.node_stats[0].transmit_rounds == 9

    def test_returns_false(self):
        result = run_roles(path_graph(2), {0: "snd"}, k=3, delta=4)
        assert result.node_info[0]["result"] is False

    def test_zero_iterations(self):
        result = run_roles(path_graph(2), {0: "snd"}, k=0, delta=4)
        assert result.node_info[0]["rounds_used"] == 0
        assert result.node_stats[0].awake_rounds == 0


class TestRecEBackoff:
    def test_round_budget_exact_without_sender(self):
        result = run_roles(path_graph(2), {0: "rec"}, k=5, delta=12)
        assert result.node_info[0]["rounds_used"] == backoff_rounds(5, 12)
        assert result.node_info[0]["result"] is False

    def test_round_budget_exact_with_sender(self):
        result = run_roles(path_graph(2), {0: "rec", 1: "snd"}, k=5, delta=12)
        assert result.node_info[0]["rounds_used"] == backoff_rounds(5, 12)
        assert result.node_info[0]["result"] is True

    def test_round_budget_independent_of_delta_est(self):
        a = run_roles(path_graph(2), {0: "rec"}, k=4, delta=64, delta_est=2)
        b = run_roles(path_graph(2), {0: "rec"}, k=4, delta=64, delta_est=64)
        assert (
            a.node_info[0]["rounds_used"]
            == b.node_info[0]["rounds_used"]
            == backoff_rounds(4, 64)
        )

    def test_reduced_delta_est_listens_less(self):
        a = run_roles(path_graph(2), {0: "rec"}, k=4, delta=64, delta_est=2)
        b = run_roles(path_graph(2), {0: "rec"}, k=4, delta=64, delta_est=64)
        assert a.node_stats[0].listen_rounds == 4 * backoff_slots(2)
        assert b.node_stats[0].listen_rounds == 4 * backoff_slots(64)
        assert a.node_stats[0].listen_rounds < b.node_stats[0].listen_rounds

    def test_early_sleep_after_hearing(self):
        # With a lone sender, the receiver hears in iteration 1 and must
        # sleep out the rest: awake rounds far below the full budget.
        result = run_roles(path_graph(2), {0: "rec", 1: "snd"}, k=20, delta=8)
        assert result.node_info[0]["result"] is True
        assert result.node_stats[0].awake_rounds <= backoff_slots(8)

    def test_lone_sender_always_heard(self):
        # A single sender never collides, so one iteration suffices.
        for seed in range(10):
            result = run_roles(
                path_graph(2), {0: "rec", 1: "snd"}, k=1, delta=8, seed=seed
            )
            assert result.node_info[0]["result"] is True

    def test_lemma9_success_rate(self):
        # Star hub listens, 16 leaves send, Delta_est = 16, k = 8:
        # success probability must beat 1 - (7/8)^8 ~ 0.66 (it is much
        # higher in practice); 60 trials with a generous margin.
        graph = star_graph(17)
        roles = {0: "rec"}
        roles.update({leaf: "snd" for leaf in range(1, 17)})
        heard = sum(
            1
            for seed in range(60)
            if run_roles(graph, roles, k=8, delta=16, seed=seed).node_info[0]["result"]
        )
        assert heard / 60 >= 0.66

    def test_no_false_positives(self):
        # No sender anywhere: the receiver must return False.
        result = run_roles(star_graph(5), {0: "rec"}, k=6, delta=4)
        assert result.node_info[0]["result"] is False


class TestSndRecEBackoff:
    def test_round_budget_exact(self):
        result = run_roles(path_graph(2), {0: "snd_rec"}, k=5, delta=12)
        assert result.node_info[0]["rounds_used"] == backoff_rounds(5, 12)

    def test_transmits_once_per_iteration(self):
        result = run_roles(path_graph(2), {0: "snd_rec"}, k=7, delta=12)
        assert result.node_stats[0].transmit_rounds == 7

    def test_two_adjacent_contenders_hear_each_other(self):
        # The LowDegreeMIS guarantee: two marked neighbors detect each
        # other w.h.p. over k iterations.
        both_heard = 0
        for seed in range(40):
            result = run_roles(
                path_graph(2), {0: "snd_rec", 1: "snd_rec"}, k=10, delta=4, seed=seed
            )
            if result.node_info[0]["result"] or result.node_info[1]["result"]:
                both_heard += 1
        assert both_heard >= 38  # ~(3/4)^10 residual failure per trial

    def test_hears_plain_sender(self):
        result = run_roles(path_graph(2), {0: "snd_rec", 1: "snd"}, k=10, delta=4)
        assert result.node_info[0]["result"] is True

    def test_alone_hears_nothing(self):
        result = run_roles(path_graph(2), {0: "snd_rec"}, k=10, delta=4)
        assert result.node_info[0]["result"] is False


class TestTraditionalDecay:
    def test_sender_awake_all_rounds(self):
        result = run_roles(path_graph(2), {0: "decay_snd"}, k=4, delta=16)
        assert result.node_stats[0].awake_rounds == backoff_rounds(4, 16)

    def test_receiver_awake_all_rounds(self):
        result = run_roles(path_graph(2), {0: "decay_rec"}, k=4, delta=16)
        assert result.node_stats[0].awake_rounds == backoff_rounds(4, 16)
        assert result.node_info[0]["result"] is False

    def test_delivery(self):
        result = run_roles(
            path_graph(2), {0: "decay_rec", 1: "decay_snd"}, k=6, delta=8
        )
        assert result.node_info[0]["result"] is True

    def test_energy_asymmetry_vs_efficient(self):
        # The whole point of Lemma 8: efficient sender << traditional.
        efficient = run_roles(path_graph(2), {0: "snd"}, k=10, delta=64)
        traditional = run_roles(path_graph(2), {0: "decay_snd"}, k=10, delta=64)
        assert (
            efficient.node_stats[0].awake_rounds
            < traditional.node_stats[0].awake_rounds
        )
