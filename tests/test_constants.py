"""Tests for constants profiles and discrete log helpers."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import ConstantsProfile, ilog2, log2_ceil
from repro.errors import ConfigurationError


class TestLogHelpers:
    @pytest.mark.parametrize(
        "value,expected", [(1, 1), (2, 1), (3, 2), (4, 2), (5, 3), (8, 3), (9, 4), (1024, 10)]
    )
    def test_log2_ceil(self, value, expected):
        assert log2_ceil(value) == expected

    @pytest.mark.parametrize("value,expected", [(1, 1), (2, 1), (3, 2), (4, 2), (6, 3), (1024, 10)])
    def test_ilog2(self, value, expected):
        assert ilog2(value) == expected

    def test_nonpositive_rejected(self):
        with pytest.raises(ConfigurationError):
            log2_ceil(0)
        with pytest.raises(ConfigurationError):
            ilog2(0)

    @given(st.integers(1, 10**9))
    @settings(max_examples=50, deadline=None)
    def test_log2_ceil_bound(self, value):
        result = log2_ceil(value)
        assert 2 ** result >= value
        assert result >= 1


class TestProfiles:
    def test_paper_profile_values(self):
        paper = ConstantsProfile.paper()
        assert paper.beta >= 4
        assert paper.kappa >= 5
        assert paper.luby_c >= 4 / math.log2(64 / 63) - 1e-9
        # C' must make (7/8)^(C' log n) <= n^-5.
        assert paper.backoff_c >= 5 / math.log2(8 / 7) - 1e-9

    def test_presets_named(self):
        assert ConstantsProfile.paper().name == "paper"
        assert ConstantsProfile.practical().name == "practical"
        assert ConstantsProfile.fast().name == "fast"

    def test_positive_fields_enforced(self):
        with pytest.raises(ConfigurationError):
            ConstantsProfile(beta=0, luby_c=1, kappa=1, backoff_c=1, low_degree_c=1)
        with pytest.raises(ConfigurationError):
            ConstantsProfile(beta=1, luby_c=-1, kappa=1, backoff_c=1, low_degree_c=1)

    def test_scaled(self):
        base = ConstantsProfile.practical()
        doubled = base.scaled(2.0)
        assert doubled.beta == 2 * base.beta
        assert doubled.backoff_c == 2 * base.backoff_c
        assert "*2" in doubled.name
        with pytest.raises(ConfigurationError):
            base.scaled(0)

    def test_scaled_custom_name(self):
        assert ConstantsProfile.fast().scaled(3, name="big").name == "big"

    def test_frozen(self):
        with pytest.raises(Exception):
            ConstantsProfile.fast().beta = 10


class TestDerivedBounds:
    def test_all_bounds_at_least_one(self):
        profile = ConstantsProfile.fast()
        for n in (1, 2, 3, 100):
            assert profile.rank_bits(n) >= 1
            assert profile.luby_phases(n) >= 1
            assert profile.committed_degree(n) >= 1
            assert profile.deep_check_iterations(n) >= 1
            assert profile.low_degree_iterations(n) >= 1

    def test_bounds_grow_logarithmically(self):
        profile = ConstantsProfile.practical()
        assert profile.rank_bits(1024) == pytest.approx(
            profile.beta * 10, abs=1
        )
        assert profile.rank_bits(2**20) == 2 * profile.rank_bits(2**10)

    @given(st.integers(2, 10**6))
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_n(self, n):
        profile = ConstantsProfile.practical()
        assert profile.rank_bits(2 * n) >= profile.rank_bits(n)
        assert profile.luby_phases(2 * n) >= profile.luby_phases(n)
