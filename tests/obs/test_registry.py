"""Tests for the metric registry: instruments, interning, null parity,
cross-process snapshot/merge."""

import pickle

import pytest

from repro.obs.registry import (
    NULL_REGISTRY,
    Counter,
    Histogram,
    NullRegistry,
    Registry,
    Timer,
    get_registry,
    recording,
    set_registry,
)


class TestInstruments:
    def test_counter_increments(self):
        counter = Counter("hits")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_histogram_tracks_count_sum_min_max(self):
        hist = Histogram("wall")
        for value in (3.0, 1.0, 2.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == 6.0
        assert hist.minimum == 1.0
        assert hist.maximum == 3.0
        assert hist.mean == 2.0

    def test_empty_histogram_mean_is_zero(self):
        assert Histogram("empty").mean == 0.0

    def test_timer_observes_elapsed_seconds(self):
        timer = Timer("t")
        with timer.time():
            pass
        assert timer.count == 1
        assert timer.total >= 0.0

    def test_histogram_record_round_trip(self):
        hist = Histogram("a")
        hist.observe(2.0)
        hist.observe(5.0)
        other = Histogram("b")
        other.observe(1.0)
        other.merge_record(hist.to_record())
        assert other.count == 3
        assert other.total == 8.0
        assert other.minimum == 1.0
        assert other.maximum == 5.0

    def test_merge_empty_record_is_noop(self):
        hist = Histogram("a")
        hist.merge_record(Histogram("empty").to_record())
        assert hist.count == 0
        assert hist.minimum is None


class TestRegistry:
    def test_instruments_are_interned_by_name(self):
        registry = Registry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.histogram("h") is registry.histogram("h")
        assert registry.timer("t") is registry.timer("t")

    def test_name_kind_collisions_raise(self):
        registry = Registry()
        registry.counter("x")
        registry.histogram("h")
        with pytest.raises(ValueError):
            registry.histogram("x")
        with pytest.raises(ValueError):
            registry.timer("x")
        with pytest.raises(ValueError):
            registry.counter("h")
        with pytest.raises(ValueError):
            registry.timer("h")  # plain histogram, not a timer

    def test_counter_values_sorted(self):
        registry = Registry()
        registry.counter("b").inc(2)
        registry.counter("a").inc(1)
        assert list(registry.counter_values()) == ["a", "b"]
        assert registry.counter_values() == {"a": 1, "b": 2}

    def test_snapshot_is_picklable(self):
        registry = Registry()
        registry.counter("c").inc(3)
        registry.histogram("h").observe(1.5)
        snapshot = pickle.loads(pickle.dumps(registry.snapshot()))
        assert snapshot["counters"] == {"c": 3}
        assert snapshot["histograms"]["h"]["count"] == 1

    def test_merge_simulated_pool_workers(self):
        # Two "workers" record independently; the parent folds both
        # snapshots in — counters add, histograms combine exactly.
        parent = Registry()
        for trials, walls in ((2, [0.5, 1.5]), (3, [0.25, 0.75, 2.0])):
            worker = Registry()
            worker.counter("trials").inc(trials)
            for wall in walls:
                worker.histogram("wall").observe(wall)
            parent.merge(worker.snapshot())
        assert parent.counter("trials").value == 5
        wall = parent.histogram("wall")
        assert wall.count == 5
        assert wall.total == 5.0
        assert wall.minimum == 0.25
        assert wall.maximum == 2.0


class TestNullRegistry:
    def test_disabled_and_inert(self):
        null = NullRegistry()
        assert null.enabled is False
        null.counter("x").inc(10)
        null.histogram("h").observe(1.0)
        with null.timer("t").time():
            pass
        assert null.counter_values() == {}
        assert null.histogram_records() == {}
        assert null.snapshot() == {"counters": {}, "histograms": {}}

    def test_merge_is_noop(self):
        null = NullRegistry()
        null.merge({"counters": {"x": 5}, "histograms": {}})
        assert null.counter_values() == {}

    def test_instruments_are_shared_singletons(self):
        null = NullRegistry()
        assert null.counter("a") is null.counter("b")
        assert null.timer("a") is null.histogram("b")

    def test_null_recording_parity(self):
        """The same instrumented code runs under both registries; only
        the recording one accumulates state."""

        def instrumented(registry):
            registry.counter("events").inc(7)
            with registry.timer("span").time():
                registry.histogram("size").observe(42.0)

        null, real = NullRegistry(), Registry()
        instrumented(null)
        instrumented(real)
        assert null.snapshot() == {"counters": {}, "histograms": {}}
        assert real.counter_values() == {"events": 7}
        assert real.histogram_records()["size"]["count"] == 1


class TestCurrentRegistry:
    def test_default_is_null(self):
        assert get_registry() is NULL_REGISTRY
        assert get_registry().enabled is False

    def test_set_registry_returns_previous(self):
        registry = Registry()
        previous = set_registry(registry)
        try:
            assert get_registry() is registry
        finally:
            assert set_registry(previous) is registry
        assert get_registry() is previous

    def test_recording_scopes_and_restores(self):
        before = get_registry()
        with recording() as registry:
            assert get_registry() is registry
            assert registry.enabled
            registry.counter("x").inc()
        assert get_registry() is before
        assert registry.counter("x").value == 1

    def test_recording_restores_on_error(self):
        before = get_registry()
        with pytest.raises(RuntimeError):
            with recording():
                raise RuntimeError("boom")
        assert get_registry() is before
