"""End-to-end CLI tests: ``--telemetry`` / ``--cprofile`` on real
commands, then ``repro-mis obs summarize`` on the produced file."""

import pytest

from repro.cli import main
from repro.obs.export import read_jsonl
from repro.obs.registry import NULL_REGISTRY, get_registry


def run_with_telemetry(path, extra=()):
    argv = [
        "--profile", "fast", "run", "cd-mis",
        "--n", "12", "--trials", "2", "--telemetry", str(path), *extra,
    ]
    assert main(argv) == 0
    return read_jsonl(path, strict=True)  # strict: schema must validate


class TestTelemetryOption:
    def test_run_writes_valid_jsonl(self, tmp_path):
        records = run_with_telemetry(tmp_path / "t.jsonl")
        types = [record["type"] for record in records]
        assert types[0] == "meta"
        assert types[-1] == "summary"
        assert "progress" in types
        summary = records[-1]
        assert summary["counters"]["engine.runs"] == 2
        assert summary["counters"]["exec.trials.total"] == 2
        # The fast-path breakdown partitions the processed rounds.
        counters = summary["counters"]
        assert counters["engine.rounds.processed"] == (
            counters.get("engine.rounds.zero_tx", 0)
            + counters.get("engine.rounds.one_tx", 0)
            + counters.get("engine.rounds.scatter_dict", 0)
            + counters.get("engine.rounds.scatter_bincount", 0)
        )
        assert summary["histograms"]["engine.wall_s"]["count"] == 2

    def test_session_restores_null_registry(self, tmp_path):
        assert get_registry() is NULL_REGISTRY
        run_with_telemetry(tmp_path / "t.jsonl")
        assert get_registry() is NULL_REGISTRY

    def test_cache_stats_land_in_summary(self, tmp_path):
        extra = ("--cache", "--cache-dir", str(tmp_path / "cache"))
        run_with_telemetry(tmp_path / "one.jsonl", extra)
        records = run_with_telemetry(tmp_path / "two.jsonl", extra)
        cache = records[-1]["cache"]
        assert cache["hits"] == 2 and cache["misses"] == 0
        assert records[-1]["counters"]["exec.trials.cache_hits"] == 2

    def test_pooled_run_merges_worker_counters(self, tmp_path):
        records = run_with_telemetry(tmp_path / "t.jsonl", ("--jobs", "2"))
        counters = records[-1]["counters"]
        assert counters["engine.runs"] == 2
        assert counters["exec.trials.computed"] == 2


class TestObsSummarize:
    def test_renders_report(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        run_with_telemetry(path)
        capsys.readouterr()
        assert main(["obs", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "engine" in out
        assert "rounds processed" in out
        assert "energy by component" in out
        assert "trials: 2 total" in out

    def test_cache_report_includes_hit_rate(self, tmp_path, capsys):
        extra = ("--cache", "--cache-dir", str(tmp_path / "cache"))
        run_with_telemetry(tmp_path / "one.jsonl", extra)
        run_with_telemetry(tmp_path / "two.jsonl", extra)
        capsys.readouterr()
        assert main(["obs", "summarize", str(tmp_path / "two.jsonl")]) == 0
        out = capsys.readouterr().out
        assert "result cache" in out
        # Second run: 2 lookups, 2 hits, 0 writes — rate 1.0.
        assert "lookups: 2 (2 hits, 0 misses), writes: 0" in out
        assert "hit rate: 1.0000 (100.0%)" in out

    def test_cache_report_zero_lookups(self, tmp_path, capsys):
        # A session whose cache was never consulted (no trials) still
        # reports a well-defined 0.0 hit rate, not NaN or a crash.
        from repro.obs.export import JsonlWriter, meta_record, summary_record
        from repro.obs.registry import Registry

        path = tmp_path / "t.jsonl"
        with JsonlWriter(path) as writer:
            writer.write(meta_record("run", []))
            writer.write(
                summary_record(
                    Registry(),
                    cache_stats={
                        "hits": 0, "misses": 0, "writes": 0, "hit_rate": 0.0,
                    },
                )
            )
        capsys.readouterr()
        assert main(["obs", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "hit rate: 0.0000 (n/a)" in out

    def test_churned_run_renders_faults_section(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        records = run_with_telemetry(
            path, ("--faults", "churn=1.0@30..32,seed=1")
        )
        counters = records[-1]["counters"]
        assert counters["faults.churn.events.toggle"] >= 1
        capsys.readouterr()
        assert main(["obs", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "faults & churn" in out
        assert "toggle events" in out
        assert "repair rounds" in out
        assert "violation-window rounds" in out

    def test_static_run_omits_faults_section(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        run_with_telemetry(path)
        capsys.readouterr()
        assert main(["obs", "summarize", str(path)]) == 0
        assert "faults & churn" not in capsys.readouterr().out

    def test_multiple_files(self, tmp_path, capsys):
        one, two = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        run_with_telemetry(one)
        run_with_telemetry(two)
        capsys.readouterr()
        assert main(["obs", "summarize", str(one), str(two)]) == 0
        out = capsys.readouterr().out
        assert str(one) in out and str(two) in out

    def test_missing_file_exits_with_message(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["obs", "summarize", str(tmp_path / "nope.jsonl")])

    def test_strict_mode_rejects_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(SystemExit):
            main(["obs", "summarize", "--strict", str(path)])
        # Tolerant mode renders (exit 1: no usable records).
        assert main(["obs", "summarize", str(path)]) == 1


class TestChannelsSummarize:
    def run_multichannel(self, path, extra=()):
        argv = [
            "--profile", "fast", "run", "mc-luby", "--n", "12", "--trials", "2",
            "--channels", "4", "--telemetry", str(path), *extra,
        ]
        assert main(argv) == 0
        return read_jsonl(path, strict=True)

    def test_multichannel_run_renders_channels_section(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        records = self.run_multichannel(path)
        counters = records[-1]["counters"]
        assert counters["engine.channels.rounds"] >= 1
        assert counters["engine.batch.fallback.multichannel"] == 1
        capsys.readouterr()
        assert main(["obs", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "channels" in out
        assert "multichannel rounds:" in out
        assert "tx rounds" in out
        assert "batch fallbacks (multichannel): 1" in out

    def test_channel_jam_renders_per_channel_row(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        records = self.run_multichannel(
            path, ("--faults", "jam=0..200@0.9:2,seed=1")
        )
        counters = records[-1]["counters"]
        assert counters["faults.jam.applied.2"] >= 1
        capsys.readouterr()
        assert main(["obs", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "faults & churn" in out
        assert "jams applied (channel 2)" in out

    def test_single_channel_run_omits_channels_section(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        run_with_telemetry(path)
        capsys.readouterr()
        assert main(["obs", "summarize", str(path)]) == 0
        assert "multichannel rounds:" not in capsys.readouterr().out


class TestCProfileOption:
    def test_writes_profile_table(self, tmp_path):
        out_dir = tmp_path / "profiles"
        argv = [
            "--profile", "fast", "run", "cd-mis",
            "--n", "10", "--trials", "1", "--cprofile", str(out_dir),
        ]
        assert main(argv) == 0
        table = out_dir / "profile_cli_run.txt"
        assert table.exists()
        content = table.read_text()
        assert "cProfile: cli_run" in content
        assert "cumulative" in content

    def test_combines_with_telemetry(self, tmp_path):
        argv = [
            "--profile", "fast", "run", "cd-mis", "--n", "10", "--trials", "1",
            "--telemetry", str(tmp_path / "t.jsonl"),
            "--cprofile", str(tmp_path / "profiles"),
        ]
        assert main(argv) == 0
        assert (tmp_path / "profiles" / "profile_cli_run.txt").exists()
        records = read_jsonl(tmp_path / "t.jsonl", strict=True)
        assert records[-1]["type"] == "summary"
