"""Tests for the telemetry JSONL schema, writer/reader, and progress
emitter."""

import json
from dataclasses import dataclass

import pytest

from repro.obs.export import (
    OBS_SCHEMA,
    JsonlProgressEmitter,
    JsonlWriter,
    SchemaError,
    meta_record,
    progress_record,
    read_jsonl,
    records_to_registry,
    summary_record,
    validate_record,
)
from repro.obs.registry import Registry


@dataclass
class FakeProgressEvent:
    done: int
    total: int
    cache_hits: int
    elapsed_s: float
    eta_s: float = None


class TestValidation:
    def test_builders_produce_valid_records(self):
        registry = Registry()
        registry.counter("c").inc()
        registry.histogram("h").observe(1.0)
        for record in (
            meta_record("run", ["--trials", "3"]),
            progress_record(1, 3, 0, 0.5),
            summary_record(registry),
            summary_record(registry, cache_stats={"hits": 1}),
        ):
            assert validate_record(record) is record

    def test_rejects_non_object(self):
        with pytest.raises(SchemaError):
            validate_record([1, 2, 3])

    def test_rejects_unknown_schema_tag(self):
        with pytest.raises(SchemaError, match="schema tag"):
            validate_record({"schema": "bogus/9", "type": "meta"})

    def test_rejects_unknown_record_type(self):
        with pytest.raises(SchemaError, match="record type"):
            validate_record({"schema": OBS_SCHEMA, "type": "mystery"})

    def test_rejects_missing_required_fields(self):
        with pytest.raises(SchemaError, match="missing field"):
            validate_record({"schema": OBS_SCHEMA, "type": "meta"})

    def test_rejects_malformed_summary_instruments(self):
        base = {"schema": OBS_SCHEMA, "type": "summary"}
        with pytest.raises(SchemaError, match="counters"):
            validate_record({**base, "counters": {"x": "NaN"}, "histograms": {}})
        with pytest.raises(SchemaError, match="histogram"):
            validate_record(
                {**base, "counters": {}, "histograms": {"h": {"count": 1}}}
            )


class TestJsonlRoundTrip:
    def test_write_then_read(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        registry = Registry()
        registry.counter("engine.runs").inc(3)
        registry.histogram("wall").observe(0.5)
        with JsonlWriter(path) as writer:
            writer.write(meta_record("run", ["x"]))
            writer.write(progress_record(3, 3, 1, 0.9, eta_s=0.0))
            writer.write(summary_record(registry))
        records = read_jsonl(path)
        assert [r["type"] for r in records] == ["meta", "progress", "summary"]
        assert records[1]["cache_hits"] == 1
        assert records[2]["counters"] == {"engine.runs": 3}

    def test_writer_rejects_invalid_records(self, tmp_path):
        writer = JsonlWriter(tmp_path / "t.jsonl")
        with pytest.raises(SchemaError):
            writer.write({"type": "meta"})
        writer.close()

    def test_tolerant_read_skips_torn_and_foreign_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        good = json.dumps(meta_record("run", []))
        path.write_text(
            good + "\n"
            + '{"torn": \n'  # invalid JSON (interrupted write)
            + json.dumps({"schema": "other/1", "type": "meta"}) + "\n"
        )
        records = read_jsonl(path)
        assert len(records) == 1
        assert records[0]["type"] == "meta"

    def test_strict_read_raises_with_line_number(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(json.dumps(meta_record("run", [])) + "\nnot json\n")
        with pytest.raises(SchemaError, match=":2:"):
            read_jsonl(path, strict=True)

    def test_records_to_registry_merges_summaries(self, tmp_path):
        one, two = Registry(), Registry()
        one.counter("trials").inc(2)
        two.counter("trials").inc(3)
        two.histogram("wall").observe(1.0)
        records = [
            meta_record("run", []),
            summary_record(one),
            summary_record(two),
        ]
        merged = records_to_registry(records)
        assert merged.counter("trials").value == 5
        assert merged.histogram("wall").count == 1


class TestProgressEmitter:
    def test_throttles_but_always_emits_terminal(self, tmp_path):
        writer = JsonlWriter(tmp_path / "t.jsonl")
        emitter = JsonlProgressEmitter(writer, min_interval_s=3600.0)
        for done in range(1, 6):
            emitter(FakeProgressEvent(done, 5, 0, done * 0.1))
        writer.close()
        records = read_jsonl(tmp_path / "t.jsonl")
        # First event emits, 2..4 are throttled, terminal always emits.
        assert [r["done"] for r in records] == [1, 5]

    def test_no_throttle_emits_everything(self, tmp_path):
        writer = JsonlWriter(tmp_path / "t.jsonl")
        emitter = JsonlProgressEmitter(writer, min_interval_s=0.0)
        for done in range(1, 4):
            emitter(FakeProgressEvent(done, 3, done - 1, 0.1))
        writer.close()
        records = read_jsonl(tmp_path / "t.jsonl")
        assert [r["done"] for r in records] == [1, 2, 3]
        assert [r["cache_hits"] for r in records] == [0, 1, 2]
