"""Unit/job spec validation, key parity, and result assembly."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.exec.cache import ResultCache, trial_key
from repro.service.jobs import (
    JOB_KINDS,
    assemble_cell_result,
    normalize_job,
)
from repro.service.units import (
    TrialUnitSpec,
    execute_unit,
    normalize_unit,
    unit_key,
)


class TestNormalizeUnit:
    def test_defaults(self):
        unit = normalize_unit({"algorithm": "beeping-mis"})
        assert unit.topology == "gnp"
        assert unit.n == 128
        assert unit.seed == 0
        assert unit.profile == "practical"
        assert unit.model  # the algorithm's default model
        assert unit.max_rounds is None
        assert unit.faults is None

    def test_graph_spec_matches_cli_shape(self):
        unit = normalize_unit(
            {"algorithm": "beeping-mis", "topology": "udg", "n": 64}
        )
        assert unit.graph_spec == "workload:udg/n=64"

    @pytest.mark.parametrize(
        "fragment",
        [
            {"algorithm": "no-such-algorithm"},
            {"algorithm": "beeping-mis", "profile": "nope"},
            {"algorithm": "beeping-mis", "model": "nope"},
            {"algorithm": "beeping-mis", "topology": "nope"},
            {"algorithm": "beeping-mis", "n": 0},
            {"algorithm": "beeping-mis", "n": "big"},
            {"algorithm": "beeping-mis", "seed": "zero"},
            {"algorithm": "beeping-mis", "max_rounds": 0},
            {"algorithm": "beeping-mis", "faults": "bogus=x"},
        ],
    )
    def test_rejects_bad_fragments(self, fragment):
        with pytest.raises(ConfigurationError):
            normalize_unit(fragment)

    def test_round_trips_through_record(self):
        unit = normalize_unit(
            {"algorithm": "beeping-mis", "n": 32, "seed": 7, "max_rounds": 500}
        )
        assert TrialUnitSpec.from_record(unit.to_record()) == unit


class TestUnitKeyParity:
    """unit_key must equal what run_trials derives for the same cell."""

    def test_matches_runner_trial_key(self):
        from repro.cli import _DEFAULT_MODEL, _PROFILES, _PROTOCOLS

        unit = normalize_unit(
            {"algorithm": "beeping-mis", "topology": "gnp", "n": 24, "seed": 5}
        )
        protocol = _PROTOCOLS["beeping-mis"](_PROFILES["practical"]())
        expected = trial_key(
            protocol=protocol,
            model_name=_DEFAULT_MODEL["beeping-mis"],
            graph_spec="workload:gnp/n=24",
            seed=5,
            max_rounds=None,
            seed_mode="decoupled",
            faults=None,
        )
        assert unit_key(unit) == expected

    def test_noop_faults_key_equals_no_faults_key(self):
        base = {"algorithm": "beeping-mis", "n": 16, "seed": 1}
        plain = normalize_unit(base)
        noop = normalize_unit({**base, "faults": "drop=0"})
        assert unit_key(noop) == unit_key(plain)

    def test_distinct_cells_get_distinct_keys(self):
        keys = {
            unit_key(normalize_unit({"algorithm": "beeping-mis", "n": n, "seed": s}))
            for n in (16, 24)
            for s in (0, 1)
        }
        assert len(keys) == 4


class TestExecuteUnit:
    def test_record_is_bit_identical_to_cli_cache_path(self, tmp_path):
        """The acceptance criterion: service results == CLI results."""
        from repro.analysis.runner import run_trials
        from repro.analysis.workloads import build_workload
        from repro.cli import _DEFAULT_MODEL, _PROFILES, _PROTOCOLS
        from repro.radio.models import model_by_name

        cache = ResultCache(tmp_path)
        protocol = _PROTOCOLS["beeping-mis"](_PROFILES["practical"]())
        model = model_by_name(_DEFAULT_MODEL["beeping-mis"])
        seeds = [5, 6, 7]
        run_trials(
            lambda g: build_workload("gnp", 24, g),
            protocol,
            model,
            seeds,
            jobs=1,
            cache=cache,
            graph_spec="workload:gnp/n=24",
            faults=False,
            policy=False,
        )
        for seed in seeds:
            unit = normalize_unit(
                {"algorithm": "beeping-mis", "topology": "gnp", "n": 24, "seed": seed}
            )
            cli_record = cache.get(unit_key(unit))
            assert cli_record is not None
            service_record = execute_unit(unit)
            assert json.dumps(cli_record, sort_keys=True) == json.dumps(
                service_record, sort_keys=True
            )

    def test_determinism_across_calls(self):
        unit = normalize_unit({"algorithm": "beeping-mis", "n": 16, "seed": 3})
        assert execute_unit(unit) == execute_unit(unit)


class TestNormalizeJob:
    def test_kinds(self):
        assert JOB_KINDS == ("run", "sweep", "batch", "claims")
        with pytest.raises(ConfigurationError):
            normalize_job("nope", {})
        with pytest.raises(ConfigurationError):
            normalize_job("run", "not an object")

    def test_run_seed_derivation_matches_cli(self):
        """repro-mis run: seeds = seed + trial."""
        job = normalize_job(
            "run", {"algorithm": "beeping-mis", "trials": 3, "seed": 10}
        )
        assert len(job.cells) == 1
        assert job.cells[0].seeds == (10, 11, 12)
        assert job.total_units == 3

    def test_sweep_seed_derivation_matches_run_size_sweep(self):
        """run_size_sweep: seeds = base_seed + 7919*trial + n, per size."""
        job = normalize_job(
            "sweep",
            {"algorithm": "beeping-mis", "sizes": [16, 24], "trials": 2, "seed": 1},
        )
        assert [cell.seeds for cell in job.cells] == [
            (1 + 16, 1 + 7919 + 16),
            (1 + 24, 1 + 7919 + 24),
        ]
        assert job.total_units == 4

    def test_sweep_requires_sizes(self):
        for bad in (None, [], [0], ["x"], "16"):
            with pytest.raises(ConfigurationError):
                normalize_job(
                    "sweep", {"algorithm": "beeping-mis", "sizes": bad}
                )

    def test_batch_decomposes_each_cell(self):
        job = normalize_job(
            "batch",
            {
                "cells": [
                    {"algorithm": "beeping-mis", "n": 16, "trials": 2},
                    {"algorithm": "beeping-mis", "n": 24, "seed": 4},
                ]
            },
        )
        assert [cell.seeds for cell in job.cells] == [(0, 1), (4,)]

    def test_batch_rejects_empty_and_malformed(self):
        with pytest.raises(ConfigurationError):
            normalize_job("batch", {"cells": []})
        with pytest.raises(ConfigurationError):
            normalize_job("batch", {"cells": ["nope"]})

    def test_claims_validation(self):
        job = normalize_job("claims", {"tier": "quick"})
        assert job.cells == ()
        assert job.spec["profile"] == "practical"
        with pytest.raises(ConfigurationError):
            normalize_job("claims", {"tier": "extreme"})
        with pytest.raises(ConfigurationError):
            normalize_job("claims", {"claim_ids": ["no-such-claim"]})
        with pytest.raises(ConfigurationError):
            normalize_job("claims", {"budget": 0})

    def test_units_align_with_cells(self):
        job = normalize_job(
            "sweep",
            {"algorithm": "beeping-mis", "sizes": [16, 24], "trials": 2},
        )
        units = job.units()
        assert len(units) == 4
        assert [u.n for u in units] == [16, 16, 24, 24]
        assert all(u.seed == s for u, s in zip(units[:2], job.cells[0].seeds))


class TestAssembleCellResult:
    def _records(self):
        good = {
            "seed": 1,
            "valid": True,
            "rounds": 10,
            "max_energy": 4,
            "mean_energy": 2.5,
            "mis_size": 6,
            "failure_kinds": [],
        }
        bad = {**good, "seed": 2, "valid": False, "rounds": 12}
        quarantined = {
            "quarantined": True,
            "seed": 3,
            "attempts": 2,
            "error_type": "TrialTimeoutError",
            "message": "too slow",
            "traceback": "",
        }
        return [good, bad, quarantined]

    def test_separates_quarantines_and_aggregates(self):
        job = normalize_job(
            "run", {"algorithm": "beeping-mis", "n": 16, "trials": 3, "seed": 1}
        )
        result = assemble_cell_result(job.cells[0], self._records())
        assert len(result["outcomes"]) == 2
        assert len(result["quarantined"]) == 1
        stats = result["stats"]
        assert stats["trials"] == 2
        assert stats["failures"] == 1
        assert stats["failure_rate"] == 0.5
        assert stats["rounds"]["mean"] == 11.0
        assert result["graph_spec"] == "workload:gnp/n=16"

    def test_all_quarantined_cell(self):
        job = normalize_job(
            "run", {"algorithm": "beeping-mis", "n": 16, "seed": 3}
        )
        result = assemble_cell_result(job.cells[0], [self._records()[2]])
        assert result["stats"]["trials"] == 0
        assert result["stats"]["failure_rate"] == 0.0
        assert "rounds" not in result["stats"]
