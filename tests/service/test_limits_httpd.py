"""Token bucket / tenant limiter semantics and HTTP parsing."""

import asyncio

import pytest

from repro.service.httpd import (
    ChunkedResponse,
    HttpError,
    json_response,
    read_request,
)
from repro.service.limits import LimitPolicy, TenantLimiter, TokenBucket


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3, clock=clock)
        assert [bucket.try_acquire() for _ in range(4)] == [
            True,
            True,
            True,
            False,
        ]
        clock.advance(0.5)  # 1 token back at 2/s
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_capacity_is_capped_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2, clock=clock)
        clock.advance(1000.0)
        assert bucket.available == 2.0

    def test_rejects_degenerate_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1, burst=0)


class TestTenantLimiter:
    def test_inflight_budget_charges_and_releases(self):
        clock = FakeClock()
        limiter = TenantLimiter(
            LimitPolicy(max_inflight_trials=5, submit_rate=100, submit_burst=100),
            clock=clock,
        )
        ok, _ = limiter.admit("alice", 4)
        assert ok and limiter.inflight("alice") == 4
        ok, reason = limiter.admit("alice", 2)
        assert not ok and "in-flight trial budget" in reason
        assert limiter.inflight("alice") == 4  # rejected charge rolled back
        limiter.release("alice", 3)
        ok, _ = limiter.admit("alice", 2)
        assert ok

    def test_tenants_are_independent(self):
        clock = FakeClock()
        limiter = TenantLimiter(
            LimitPolicy(max_inflight_trials=2, submit_rate=100, submit_burst=100),
            clock=clock,
        )
        assert limiter.admit("alice", 2)[0]
        assert not limiter.admit("alice", 1)[0]
        assert limiter.admit("bob", 2)[0]

    def test_rate_limit_reason_names_the_client(self):
        clock = FakeClock()
        limiter = TenantLimiter(
            LimitPolicy(submit_rate=1.0, submit_burst=1), clock=clock
        )
        assert limiter.admit("alice", 0)[0]
        ok, reason = limiter.admit("alice", 0)
        assert not ok and "alice" in reason and "rate" in reason

    def test_cached_only_submissions_cost_no_budget(self):
        clock = FakeClock()
        limiter = TenantLimiter(
            LimitPolicy(max_inflight_trials=1, submit_rate=100, submit_burst=100),
            clock=clock,
        )
        for _ in range(5):
            assert limiter.admit("alice", 0)[0]
        assert limiter.inflight("alice") == 0


def _parse(raw: bytes):
    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(run())


class TestReadRequest:
    def test_parses_post_with_body(self):
        body = b'{"kind":"run"}'
        request = _parse(
            b"POST /v1/jobs?x=1 HTTP/1.1\r\n"
            b"Host: localhost\r\n"
            b"Content-Type: application/json\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        assert request.method == "POST"
        assert request.path == "/v1/jobs"
        assert request.query == {"x": "1"}
        assert request.headers["host"] == "localhost"
        assert request.body == body

    def test_json_body_round_trip(self):
        body = b'{"kind": "sweep", "spec": {"sizes": [16]}}'
        request = _parse(
            b"POST /v1/jobs HTTP/1.1\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        assert request.json() == {"kind": "sweep", "spec": {"sizes": [16]}}

    def test_clean_close_returns_none(self):
        assert _parse(b"") is None

    @pytest.mark.parametrize(
        "raw",
        [
            b"GARBAGE\r\n\r\n",
            b"GET /x\r\n\r\n",  # missing version
            b"GET /x HTTP/1.1\r\nbroken header\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: -5\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            b"GET /x HTTP/1.1\r\nTrunc",  # EOF mid-head
        ],
    )
    def test_malformed_requests_raise_http_errors(self, raw):
        with pytest.raises(HttpError):
            _parse(raw)

    def test_oversized_body_is_rejected(self):
        with pytest.raises(HttpError) as excinfo:
            _parse(
                b"POST /x HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n"
            )
        assert excinfo.value.status == 413

    def test_bad_json_body_maps_to_400(self):
        request = _parse(
            b"POST /x HTTP/1.1\r\nContent-Length: 4\r\n\r\nnope"
        )
        with pytest.raises(HttpError) as excinfo:
            request.json()
        assert excinfo.value.status == 400


class TestResponses:
    def test_json_response_shape(self):
        raw = json_response(200, {"a": 1})
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Type: application/json" in head
        assert f"Content-Length: {len(body)}".encode() in head
        assert body == b'{"a": 1}\n'

    def test_chunked_stream_framing(self):
        class FakeWriter:
            def __init__(self):
                self.chunks = []

            def write(self, data):
                self.chunks.append(data)

            async def drain(self):
                pass

        async def run():
            writer = FakeWriter()
            stream = ChunkedResponse(writer)
            await stream.start()
            await stream.send_record({"type": "meta"})
            await stream.send(b"")  # must not emit a terminator
            await stream.end()
            return b"".join(writer.chunks)

        raw = asyncio.run(run())
        head, _, rest = raw.partition(b"\r\n\r\n")
        assert b"Transfer-Encoding: chunked" in head
        payload = b'{"type": "meta"}\n'
        assert rest == b"%x\r\n" % len(payload) + payload + b"\r\n0\r\n\r\n"
