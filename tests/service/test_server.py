"""End-to-end campaign service tests.

The HTTP tests host a real :class:`CampaignService` on an ephemeral
port inside a background thread (its own event loop) and drive it with
the stdlib :class:`ServiceClient` — the same path the CLI and CI smoke
job use.  Scheduler-level behaviours that need deterministic control of
unit execution (in-flight dedup, quarantine, resume) drive the
:class:`Scheduler` directly under ``asyncio.run``.
"""

import asyncio
import json
import queue
import threading
import time
from contextlib import contextmanager

import pytest

from repro.exec.cache import ResultCache
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import normalize_job
from repro.service.limits import LimitPolicy
from repro.service.scheduler import Job, JobStore, RateLimited, Scheduler
from repro.service.server import CampaignService

RUN_SPEC = {"algorithm": "beeping-mis", "topology": "gnp", "n": 16, "trials": 2}
SWEEP_SPEC = {
    "algorithm": "beeping-mis",
    "sizes": [16, 24],
    "trials": 2,
    "seed": 0,
}


@contextmanager
def running_service(tmp_path, **service_kwargs):
    """Host a CampaignService on an ephemeral port in a thread."""
    cache = ResultCache(tmp_path / "cache")
    ready: "queue.Queue" = queue.Queue()

    async def main():
        service = CampaignService(cache, workers=2, **service_kwargs)
        await service.start("127.0.0.1", 0)
        port = service._server.sockets[0].getsockname()[1]
        ready.put((service, port, asyncio.get_running_loop()))
        await service.serve_until_stopped()

    thread = threading.Thread(target=lambda: asyncio.run(main()), daemon=True)
    thread.start()
    service, port, loop = ready.get(timeout=10)
    client = ServiceClient(f"http://127.0.0.1:{port}", timeout=30)
    try:
        yield client, service, cache
    finally:
        try:
            loop.call_soon_threadsafe(service.request_stop)
        except RuntimeError:
            pass  # already stopped via POST /v1/shutdown
        thread.join(timeout=20)
        assert not thread.is_alive(), "service thread failed to stop"


class TestHttpApi:
    def test_health_and_stats(self, tmp_path):
        with running_service(tmp_path) as (client, _service, _cache):
            health = client.health()
            assert health["status"] == "ok" and health["accepting"]
            stats = client.stats()
            assert stats["workers"] == 2
            assert stats["jobs"] == {}

    def test_run_job_end_to_end(self, tmp_path):
        with running_service(tmp_path) as (client, _service, _cache):
            job = client.submit("run", {**RUN_SPEC, "seed": 3}, client="alice")
            assert job["total_units"] == 2
            result = client.wait(job["id"], timeout=60)
            assert result["kind"] == "run"
            [cell] = result["cells"]
            assert [r["seed"] for r in cell["outcomes"]] == [3, 4]
            assert cell["stats"]["trials"] == 2
            assert cell["graph_spec"] == "workload:gnp/n=16"
            descriptor = client.status(job["id"])
            assert descriptor["status"] == "done"
            assert descriptor["computed_units"] == 2
            assert descriptor["cached_units"] == 0

    def test_duplicate_sweep_serves_from_cache(self, tmp_path):
        with running_service(tmp_path) as (client, _service, _cache):
            first = client.submit("sweep", SWEEP_SPEC, client="alice")
            result_1 = client.wait(first["id"], timeout=120)
            second = client.submit("sweep", SWEEP_SPEC, client="bob")
            result_2 = client.wait(second["id"], timeout=30)
            descriptor = client.status(second["id"])
            assert descriptor["cached_units"] == 4
            assert descriptor["computed_units"] == 0
            assert json.dumps(result_1["cells"], sort_keys=True) == json.dumps(
                result_2["cells"], sort_keys=True
            )

    def test_events_stream_replays_finished_job(self, tmp_path):
        with running_service(tmp_path) as (client, _service, _cache):
            job = client.submit("run", {**RUN_SPEC, "trials": 1}, client="a")
            client.wait(job["id"], timeout=60)
            events = list(client.events(job["id"]))
            assert events[0]["type"] == "meta"
            assert events[0]["command"] == "service:run"
            final = events[-1]
            assert final["type"] == "progress"
            assert final["done"] == final["total"] == 1
            assert final["eta_s"] == 0.0

    def test_claims_job_produces_document(self, tmp_path):
        with running_service(tmp_path) as (client, _service, cache):
            spec = {
                "tier": "quick",
                "claim_ids": ["thm2-cd-energy"],
                "budget": 4,
            }
            job = client.submit("claims", spec, client="alice")
            result = client.wait(job["id"], timeout=120)
            [claim] = result["document"]["claims"]
            assert claim["claim_id"] == "thm2-cd-energy"
            assert claim["verdict"] in ("reproduced", "inconclusive")
            assert len(cache) > 0  # the sampler went through the shared cache
            # identical re-verification rides the cache
            job2 = client.submit("claims", spec, client="bob")
            result2 = client.wait(job2["id"], timeout=120)
            assert result2["document"]["claims"] == result["document"]["claims"]
            assert cache.stats.hits > 0

    def test_error_mapping(self, tmp_path):
        with running_service(tmp_path) as (client, _service, _cache):
            with pytest.raises(ServiceError) as excinfo:
                client.submit("run", {"algorithm": "no-such"}, client="a")
            assert excinfo.value.status == 400
            with pytest.raises(ServiceError) as excinfo:
                client.submit("nope", {}, client="a")
            assert excinfo.value.status == 400
            with pytest.raises(ServiceError) as excinfo:
                client.status("j-missing")
            assert excinfo.value.status == 404
            with pytest.raises(ServiceError) as excinfo:
                client._request("GET", "/nowhere")
            assert excinfo.value.status == 404

    def test_submission_rate_limit_maps_to_429(self, tmp_path):
        limits = LimitPolicy(submit_rate=0.001, submit_burst=1)
        with running_service(tmp_path, limits=limits) as (client, _s, _c):
            client.submit("run", {**RUN_SPEC, "trials": 1}, client="alice")
            with pytest.raises(ServiceError) as excinfo:
                client.submit("run", {**RUN_SPEC, "seed": 9}, client="alice")
            assert excinfo.value.status == 429
            assert "rate" in str(excinfo.value)
            # a different tenant has its own bucket
            job = client.submit("run", {**RUN_SPEC, "seed": 9}, client="bob")
            client.wait(job["id"], timeout=60)

    def test_shutdown_endpoint_stops_service(self, tmp_path):
        with running_service(tmp_path) as (client, service, _cache):
            assert client.shutdown()["status"] == "shutting down"
            deadline = time.monotonic() + 10
            while service.scheduler.accepting and time.monotonic() < deadline:
                time.sleep(0.01)
            assert not service.scheduler.accepting


def _gated_execute(gate: threading.Event):
    """An execute_unit stand-in that blocks until the gate opens."""

    def fake_execute(unit, policy=None):
        assert gate.wait(timeout=30)
        return {
            "seed": unit.seed,
            "valid": True,
            "rounds": 1,
            "max_energy": 1,
            "mean_energy": 1.0,
            "mis_size": 1,
            "failure_kinds": [],
        }

    return fake_execute


class TestSchedulerDedup:
    def test_inflight_units_dedupe_across_jobs(self, tmp_path, monkeypatch):
        gate = threading.Event()
        monkeypatch.setattr(
            "repro.service.scheduler.execute_unit", _gated_execute(gate)
        )

        async def scenario():
            from repro.obs.registry import Registry

            scheduler = Scheduler(
                ResultCache(tmp_path / "cache"), workers=2, registry=Registry()
            )
            await scheduler.start()
            spec = {**RUN_SPEC, "seed": 5}
            job_1 = scheduler.submit("run", spec, "alice")
            job_2 = scheduler.submit("run", spec, "bob")
            # identical cell, still in flight: subscribe, don't recompute
            assert job_1.computed_units == 2
            assert job_2.deduped_units == 2
            assert job_2.computed_units == 0
            assert scheduler.limiter.inflight("alice") == 2
            assert scheduler.limiter.inflight("bob") == 0
            gate.set()
            deadline = asyncio.get_running_loop().time() + 20
            while not (job_1.status == job_2.status == "done"):
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.01)
            assert job_1.records == job_2.records
            assert scheduler.limiter.inflight("alice") == 0
            counters = scheduler.stats()["counters"]
            assert counters.get("service.units.deduped") == 2
            assert counters.get("service.units.computed") == 2
            await scheduler.shutdown()

        asyncio.run(scenario())

    def test_duplicate_units_within_one_job_compute_once(
        self, tmp_path, monkeypatch
    ):
        gate = threading.Event()
        gate.set()
        monkeypatch.setattr(
            "repro.service.scheduler.execute_unit", _gated_execute(gate)
        )

        async def scenario():
            scheduler = Scheduler(ResultCache(tmp_path / "cache"), workers=1)
            await scheduler.start()
            # two cells, same (n, seed) → identical trial keys
            spec = {
                "cells": [
                    {"algorithm": "beeping-mis", "n": 16, "seed": 1},
                    {"algorithm": "beeping-mis", "n": 16, "seed": 1},
                ]
            }
            job = scheduler.submit("batch", spec, "alice")
            while job.status != "done":
                await asyncio.sleep(0.01)
            assert job.total_units == 2
            assert job.computed_units == 1
            assert job.deduped_units == 1
            assert job.records[0] == job.records[1]
            await scheduler.shutdown()

        asyncio.run(scenario())

    def test_inflight_budget_rejects_oversized_submission(self, tmp_path):
        async def scenario():
            scheduler = Scheduler(
                ResultCache(tmp_path / "cache"),
                workers=1,
                limits=LimitPolicy(
                    max_inflight_trials=1, submit_rate=100, submit_burst=100
                ),
            )
            await scheduler.start()
            with pytest.raises(RateLimited):
                scheduler.submit("run", {**RUN_SPEC, "trials": 2}, "alice")
            await scheduler.shutdown()

        asyncio.run(scenario())

    def test_worker_crash_becomes_quarantine_record(
        self, tmp_path, monkeypatch
    ):
        def broken_execute(unit, policy=None):
            raise ValueError("synthetic worker failure")

        monkeypatch.setattr(
            "repro.service.scheduler.execute_unit", broken_execute
        )

        async def scenario():
            scheduler = Scheduler(ResultCache(tmp_path / "cache"), workers=1)
            await scheduler.start()
            job = scheduler.submit("run", {**RUN_SPEC, "trials": 1}, "a")
            while job.status != "done":
                await asyncio.sleep(0.01)
            assert job.quarantined_units == 1
            [cell] = job.result["cells"]
            assert cell["outcomes"] == []
            assert cell["quarantined"][0]["error_type"] == "ValueError"
            await scheduler.shutdown()

        asyncio.run(scenario())


class TestPersistence:
    def test_unfinished_jobs_resume_on_start(self, tmp_path):
        cache_dir = tmp_path / "cache"
        state_dir = cache_dir / "service" / "jobs"
        spec = normalize_job("run", {**RUN_SPEC, "seed": 21, "trials": 1})
        interrupted = Job("j-interrupted01", "alice", spec)
        interrupted.status = "running"
        JobStore(state_dir).save(interrupted)

        async def scenario():
            scheduler = Scheduler(ResultCache(cache_dir), workers=1)
            resumed = await scheduler.start()
            assert resumed == 1
            job = scheduler.jobs["j-interrupted01"]
            assert job.client == "alice"
            while job.status != "done":
                await asyncio.sleep(0.01)
            assert job.result["cells"][0]["outcomes"][0]["seed"] == 21
            await scheduler.shutdown()

        asyncio.run(scenario())

    def test_done_jobs_are_not_resumed(self, tmp_path):
        cache_dir = tmp_path / "cache"
        spec = normalize_job("run", {**RUN_SPEC, "seed": 3, "trials": 1})
        finished = Job("j-finished00000", "alice", spec)
        finished.status = "done"
        JobStore(cache_dir / "service" / "jobs").save(finished)

        async def scenario():
            scheduler = Scheduler(ResultCache(cache_dir), workers=1)
            assert await scheduler.start() == 0
            assert "j-finished00000" not in scheduler.jobs
            await scheduler.shutdown()

        asyncio.run(scenario())

    def test_restarted_service_serves_prior_results_from_cache(
        self, tmp_path
    ):
        async def first_life():
            scheduler = Scheduler(ResultCache(tmp_path / "cache"), workers=2)
            await scheduler.start()
            job = scheduler.submit("run", {**RUN_SPEC, "seed": 8}, "alice")
            while job.status != "done":
                await asyncio.sleep(0.01)
            await scheduler.shutdown()
            return job.result

        async def second_life():
            # a fresh process would build a fresh ResultCache over the
            # same shards; the identical submission is served instantly
            scheduler = Scheduler(ResultCache(tmp_path / "cache"), workers=2)
            await scheduler.start()
            job = scheduler.submit("run", {**RUN_SPEC, "seed": 8}, "bob")
            assert job.status == "done"
            assert job.cached_units == job.total_units == 2
            await scheduler.shutdown()
            return job.result

        result_1 = asyncio.run(first_life())
        result_2 = asyncio.run(second_life())
        assert json.dumps(result_1["cells"], sort_keys=True) == json.dumps(
            result_2["cells"], sort_keys=True
        )
