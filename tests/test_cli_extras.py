"""Tests for the CLI's apps subcommand and export flags."""

import csv
import io
import json

import pytest

from repro.cli import main


class TestAppsCommand:
    def test_backbone(self, capsys):
        code = main(
            ["--profile", "fast", "apps", "backbone", "--n", "32", "--topology", "udg"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "backbone:" in output
        assert "overlay connected: True" in output

    def test_coloring(self, capsys):
        code = main(
            ["--profile", "fast", "apps", "coloring", "--n", "24", "--topology", "gnp"]
        )
        assert code == 0
        assert "coloring:" in capsys.readouterr().out

    def test_unknown_application_rejected(self):
        with pytest.raises(SystemExit):
            main(["apps", "teleport"])


class TestSweepExportFlags:
    def test_csv_and_json_written(self, tmp_path, capsys):
        csv_path = tmp_path / "sweep.csv"
        json_path = tmp_path / "sweep.json"
        code = main(
            [
                "--profile", "fast", "sweep", "cd-mis",
                "--sizes", "16", "32", "--trials", "2",
                "--csv", str(csv_path), "--json", str(json_path),
            ]
        )
        assert code == 0
        rows = list(csv.DictReader(io.StringIO(csv_path.read_text())))
        assert [row["n"] for row in rows] == ["16", "32"]
        data = json.loads(json_path.read_text())
        assert data[0]["protocol"] == "cd-mis"

    def test_no_export_without_flags(self, tmp_path, capsys):
        code = main(
            ["--profile", "fast", "sweep", "cd-mis", "--sizes", "16", "--trials", "1"]
        )
        assert code == 0
        assert "wrote" not in capsys.readouterr().out
