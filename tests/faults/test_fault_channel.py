"""Channel-fault semantics and fault-plan compilation."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    CrashEvent,
    FaultPlan,
    JamWindow,
    compile_fault_plan,
    restart_rng,
    validate_crash_schedule,
)
from repro.radio.models import BEEPING, CD, NO_CD
from repro.radio.observations import BEEP, COLLISION, SILENCE, message


def channel_for(plan, model):
    compiled = compile_fault_plan(plan, model, num_nodes=8)
    assert compiled.channel is not None
    return compiled.channel


class TestJamming:
    def test_jam_forces_model_many_outcome(self):
        plan = FaultPlan(jams=(JamWindow(5, 10),))
        # A certain jam reads as "many transmitters" under every model:
        # collision under CD, beep under beeping — and, faithfully to
        # the model, silence under no-CD.
        assert channel_for(plan, CD)(7, 0, SILENCE) is COLLISION
        assert channel_for(plan, BEEPING)(7, 0, message(3)) is BEEP
        assert channel_for(plan, NO_CD)(7, 0, message(3)) is SILENCE

    def test_jam_window_is_half_open(self):
        plan = FaultPlan(jams=(JamWindow(5, 10),))
        channel = channel_for(plan, CD)
        observation = message(1)
        assert channel(4, 0, observation) is observation
        assert channel(5, 0, observation) is COLLISION
        assert channel(9, 0, observation) is COLLISION
        assert channel(10, 0, observation) is observation

    def test_jam_node_subset(self):
        plan = FaultPlan(jams=(JamWindow(0, 100, nodes=frozenset({2})),))
        channel = channel_for(plan, CD)
        observation = message(1)
        assert channel(3, 2, observation) is COLLISION
        assert channel(3, 1, observation) is observation

    def test_probabilistic_jam_fires_at_plan_rate(self):
        plan = FaultPlan(seed=11, jams=(JamWindow(0, 2000, 0.3),))
        channel = channel_for(plan, CD)
        jammed = sum(
            channel(round_, 0, SILENCE) is COLLISION for round_ in range(2000)
        )
        assert 0.25 < jammed / 2000 < 0.35

    def test_zero_probability_jam_never_fires(self):
        plan = FaultPlan(jams=(JamWindow(0, 100, 0.0),))
        channel = channel_for(plan, CD)
        assert all(channel(r, 0, SILENCE) is SILENCE for r in range(100))


class TestMessageLoss:
    def test_certain_drop_erases_everything_heard(self):
        channel = channel_for(FaultPlan(drop_p=1.0), CD)
        assert channel(0, 0, message(7)) is SILENCE
        assert channel(0, 0, COLLISION) is SILENCE

    def test_silence_cannot_be_dropped(self):
        channel = channel_for(FaultPlan(drop_p=1.0), CD)
        assert channel(0, 0, SILENCE) is SILENCE

    def test_drop_rate_matches_probability(self):
        channel = channel_for(FaultPlan(seed=3, drop_p=0.2), CD)
        observation = message(1)
        dropped = sum(
            channel(round_, 1, observation) is SILENCE for round_ in range(2000)
        )
        assert 0.15 < dropped / 2000 < 0.25

    def test_jam_wins_over_drop(self):
        plan = FaultPlan(drop_p=1.0, jams=(JamWindow(0, 10),))
        channel = channel_for(plan, CD)
        assert channel(5, 0, message(1)) is COLLISION

    def test_draws_are_order_independent(self):
        # Stateless hashing: perturbing (round, node) pairs in any order
        # yields identical outcomes — the property that lets two engines
        # with different perceiver visit orders stay bit-identical.
        channel_a = channel_for(FaultPlan(seed=3, drop_p=0.5), CD)
        channel_b = channel_for(FaultPlan(seed=3, drop_p=0.5), CD)
        observation = message(1)
        pairs = [(r, n) for r in range(50) for n in range(8)]
        forward = {p: channel_a(p[0], p[1], observation) for p in pairs}
        backward = {p: channel_b(p[0], p[1], observation)
                    for p in reversed(pairs)}
        assert forward == backward


class TestCompilation:
    def test_channel_free_plan_compiles_to_no_hook(self):
        plan = FaultPlan(crashes={0: 5})
        compiled = compile_fault_plan(plan, CD, num_nodes=4)
        assert compiled.channel is None
        assert compiled.crashes == {0: [(5, None)]}
        assert compiled.wake is None

    def test_legacy_crash_schedule_merges_as_crash_stop(self):
        plan = FaultPlan(crashes={0: CrashEvent(9, 4)})
        compiled = compile_fault_plan(
            plan, CD, num_nodes=4, crash_schedule={0: 2, 3: 7}
        )
        assert compiled.crashes == {0: [(2, None), (9, 4)], 3: [(7, None)]}

    def test_explicit_wake_schedule_overrides_plan_offsets(self):
        plan = FaultPlan(seed=1, max_wake_skew=4)
        generated = plan.wake_schedule_for(6)
        compiled = compile_fault_plan(
            plan, CD, num_nodes=6, wake_schedule={2: 99}
        )
        assert compiled.wake[2] == 99
        for node in (0, 1, 3, 4, 5):
            assert compiled.wake[node] == generated[node]

    def test_noop_parts_compile_to_none(self):
        compiled = compile_fault_plan(FaultPlan(), CD, num_nodes=4)
        assert compiled.channel is None
        assert compiled.crashes is None
        assert compiled.wake is None


class TestRestartRng:
    def test_deterministic_per_incarnation(self):
        first = restart_rng(3, 5, 1).random()
        assert first == restart_rng(3, 5, 1).random()

    def test_incarnations_draw_independent_streams(self):
        draws = {restart_rng(3, 5, k).random() for k in range(4)}
        assert len(draws) == 4

    def test_nodes_draw_independent_streams(self):
        assert restart_rng(3, 5, 1).random() != restart_rng(3, 6, 1).random()


class TestCrashScheduleValidation:
    def test_accepts_well_formed_schedule(self):
        validate_crash_schedule({0: 0, 3: 17})

    @pytest.mark.parametrize("bad", [2.5, "7", None, True])
    def test_non_int_round_rejected(self, bad):
        with pytest.raises(ConfigurationError, match="node 4 must be an int"):
            validate_crash_schedule({4: bad})

    def test_negative_round_rejected(self):
        with pytest.raises(
            ConfigurationError, match="node 2 must be non-negative"
        ):
            validate_crash_schedule({2: -1})
