"""Deterministic churn fuzz: random ChurnPlans × static faults × both
engines.

Extends the fault-fuzz contract (:mod:`tests.faults.test_fault_fuzz`)
to dynamic topologies:

1. **bit identity** — optimized and reference engines produce equal
   results (including the churn degradation metrics) and the same final
   topology for every churn plan, alone or composed with
   drop/jam/crash/wake faults;
2. **final-graph MIS validity via re-derivation** — for churn-only
   plans, the test independently replays the materialized event list
   into an edge set, checks it matches the engine's ``final_graph``,
   and verifies the decided MIS is a maximal independent set of *that*
   re-derived graph (departed nodes exempt from domination).

Runs under the ``repro-ci`` Hypothesis profile (derandomized) in CI.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import ConstantsProfile
from repro.core import CDMISProtocol
from repro.errors import SimulationError
from repro.faults import ChurnPlan, CrashEvent, FaultPlan
from repro.faults.churn import _materialize
from repro.graphs import gnp_random_graph
from repro.radio import CD, run_protocol
from repro.radio._engine_reference import run_protocol_reference

FAST = ConstantsProfile.fast()

churn_plans = st.builds(
    ChurnPlan,
    edge_p=st.sampled_from([0.0, 0.05, 0.3]),
    start=st.integers(0, 20),
    stop=st.integers(21, 70),
    joins=st.lists(
        st.tuples(st.integers(0, 50), st.integers(1, 3)), max_size=2
    ).map(tuple),
    leaves=st.lists(
        st.tuples(st.integers(0, 20), st.integers(0, 50)), max_size=2
    ).map(tuple),
    leave_fraction=st.sampled_from([0.0, 0.15]),
    leave_round=st.integers(0, 40),
)

composed_plans = st.builds(
    FaultPlan,
    seed=st.integers(min_value=0, max_value=2**32),
    drop_p=st.sampled_from([0.0, 0.05]),
    crashes=st.dictionaries(
        st.integers(min_value=0, max_value=20),
        st.lists(
            st.builds(CrashEvent, round=st.integers(0, 40)),
            min_size=1,
            max_size=1,
        ),
        max_size=2,
    ),
    max_wake_skew=st.integers(0, 2),
    churn=churn_plans,
)

graphs = st.builds(
    gnp_random_graph,
    st.integers(min_value=6, max_value=20),
    st.sampled_from([0.15, 0.3]),
    seed=st.integers(0, 1000),
)


def run_or_watchdog(engine, graph, protocol, seed, plan, budget):
    try:
        return engine(
            graph, protocol, CD, seed=seed, max_rounds=budget, faults=plan
        )
    except SimulationError:
        return "watchdog"


def final_edges(result):
    graph = result.final_graph if result.final_graph is not None else result.graph
    return {tuple(sorted(edge)) for edge in graph.edges}


@settings(max_examples=30, deadline=None)
@given(graph=graphs, plan=composed_plans, seed=st.integers(0, 50))
def test_churned_plans_bit_identical(graph, plan, seed):
    protocol = CDMISProtocol(constants=FAST)
    hint = protocol.max_rounds_hint(graph.num_nodes, max(graph.max_degree(), 1))
    budget = 8 * (hint or 200) + 400
    reference = run_or_watchdog(
        run_protocol_reference, graph, protocol, seed, plan, budget
    )
    optimized = run_or_watchdog(run_protocol, graph, protocol, seed, plan, budget)
    assert optimized == reference, plan.describe()
    if optimized != "watchdog":
        # final_graph is excluded from RunResult equality; compare the
        # topologies explicitly.
        assert final_edges(optimized) == final_edges(reference)
        assert optimized.churn_events == reference.churn_events
        assert optimized.time_to_restabilize == reference.time_to_restabilize


def rederive_final_graph(plan, graph):
    """Replay the materialized event list into (total, edges, left)."""
    events, total, _ = _materialize(plan.churn, plan.seed, graph)
    edges = {tuple(sorted(edge)) for edge in graph.edges}
    left = set()
    for event in events:
        if event[0] == "toggle":
            _, _, u, v = event
            if (u, v) in edges:
                edges.remove((u, v))
            else:
                edges.add((u, v))
        elif event[0] == "join":
            _, _, node, targets = event
            for target in targets:
                if target not in left:
                    edges.add(tuple(sorted((node, target))))
        else:  # leave
            _, _, node = event
            left.add(node)
            edges = {edge for edge in edges if node not in edge}
    return total, edges, left


@settings(max_examples=30, deadline=None)
@given(graph=graphs, churn=churn_plans, seed=st.integers(0, 50))
def test_final_graph_mis_valid_by_rederivation(graph, churn, seed):
    plan = FaultPlan(seed=seed, churn=churn)
    protocol = CDMISProtocol(constants=FAST)
    hint = protocol.max_rounds_hint(graph.num_nodes, max(graph.max_degree(), 1))
    result = run_or_watchdog(
        run_protocol, graph, protocol, seed, plan, 8 * (hint or 200) + 400
    )
    if result == "watchdog":
        return
    total, edges, left = rederive_final_graph(plan, graph)
    assert final_edges(result) == edges, churn.describe()
    assert result.left_nodes == frozenset(left)
    assert result.is_valid_mis(), churn.describe()

    # Re-derive validity from scratch, trusting only the replayed edge
    # set: the decided MIS must be independent, and every live non-MIS
    # node must be dominated.
    mis = result.mis
    adjacency = {node: set() for node in range(total)}
    for u, v in edges:
        adjacency[u].add(v)
        adjacency[v].add(u)
    assert not (mis & left)
    for u, v in edges:
        assert not (u in mis and v in mis), churn.describe()
    for node in range(total):
        if node in left or node in mis:
            continue
        assert adjacency[node] & mis, churn.describe()
