"""FaultPlan construction, validation, derived schedules, and the
``--faults`` spec grammar."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import CrashEvent, FaultPlan, JamWindow, fault_roll, parse_fault_spec
from repro.faults.plan import DROP_SALT, JAM_SALT


class TestValidation:
    @pytest.mark.parametrize("drop_p", [-0.1, 1.5])
    def test_drop_probability_range(self, drop_p):
        with pytest.raises(ConfigurationError, match="drop probability"):
            FaultPlan(drop_p=drop_p)

    def test_jam_window_stop_before_start(self):
        with pytest.raises(ConfigurationError, match="jam window stop"):
            JamWindow(10, 10)

    def test_jam_window_negative_start(self):
        with pytest.raises(ConfigurationError, match="jam window start"):
            JamWindow(-1, 5)

    def test_jam_probability_range(self):
        with pytest.raises(ConfigurationError, match="jam probability"):
            JamWindow(0, 5, probability=2.0)

    def test_jams_must_hold_windows(self):
        with pytest.raises(ConfigurationError, match="JamWindow"):
            FaultPlan(jams=((0, 5),))

    @pytest.mark.parametrize("bad_round", [-1, 2.5, True, "3"])
    def test_crash_event_round_must_be_nonnegative_int(self, bad_round):
        with pytest.raises(ConfigurationError, match="crash round"):
            CrashEvent(bad_round)

    @pytest.mark.parametrize("bad_delay", [0, -3, 1.5, True])
    def test_crash_event_recovery_delay_positive(self, bad_delay):
        with pytest.raises(ConfigurationError, match="recovery delay"):
            CrashEvent(5, bad_delay)

    def test_crash_fraction_range(self):
        with pytest.raises(ConfigurationError, match="crash fraction"):
            FaultPlan(crash_fraction=1.2)

    def test_crash_recovery_zero_rejected(self):
        with pytest.raises(ConfigurationError, match="recovery delay"):
            FaultPlan(crash_fraction=0.1, crash_recovery=0)

    def test_wake_skew_nonnegative(self):
        with pytest.raises(ConfigurationError, match="wake skew"):
            FaultPlan(max_wake_skew=-2)

    def test_crash_node_ids_nonnegative(self):
        with pytest.raises(ConfigurationError, match="crash node ids"):
            FaultPlan(crashes={-1: 5})


class TestNormalization:
    def test_default_plan_is_noop(self):
        assert FaultPlan().is_noop
        assert FaultPlan(seed=17).is_noop  # a seed alone injects nothing

    @pytest.mark.parametrize(
        "plan",
        [
            FaultPlan(drop_p=0.01),
            FaultPlan(jams=(JamWindow(0, 5),)),
            FaultPlan(crashes={3: 7}),
            FaultPlan(crash_fraction=0.5, crash_round=10),
            FaultPlan(max_wake_skew=2),
        ],
        ids=["drop", "jam", "crashes", "fraction", "wake"],
    )
    def test_any_fault_defeats_noop(self, plan):
        assert not plan.is_noop

    def test_crash_shorthands_canonicalize(self):
        plan = FaultPlan(
            crashes={
                5: 9,  # bare round -> crash-stop event
                2: CrashEvent(4, 3),
                8: [CrashEvent(20), CrashEvent(6, 2)],
            }
        )
        assert plan.crashes == (
            (2, (CrashEvent(4, 3),)),
            (5, (CrashEvent(9),)),
            (8, (CrashEvent(6, 2), CrashEvent(20))),  # round-sorted
        )

    def test_canonical_plans_compare_equal(self):
        # Equality (and therefore cache-key identity) is representation
        # independent: dict order and event order do not matter.
        first = FaultPlan(crashes={1: [CrashEvent(8), CrashEvent(2, 4)], 0: 3})
        second = FaultPlan(crashes={0: 3, 1: [CrashEvent(2, 4), CrashEvent(8)]})
        assert first == second

    def test_describe_mentions_every_fault(self):
        plan = FaultPlan(
            seed=3,
            drop_p=0.05,
            jams=(JamWindow(10, 20, 0.5),),
            crash_fraction=0.2,
            crash_round=64,
            crash_recovery=32,
            max_wake_skew=8,
        )
        text = plan.describe()
        for expected in ("seed=3", "drop=0.05", "jam=10..20@0.5",
                         "crash=0.2@64+32", "wake<=8"):
            assert expected in text
        assert FaultPlan().describe() == "no faults"


class TestDerivedSchedules:
    def test_crash_events_drop_out_of_graph_nodes(self):
        plan = FaultPlan(crashes={2: 5, 99: 5})
        assert plan.crash_events_for(10) == {2: [(5, None)]}

    def test_crash_fraction_sample_size_and_determinism(self):
        plan = FaultPlan(seed=7, crash_fraction=0.25, crash_round=12,
                         crash_recovery=4)
        events = plan.crash_events_for(40)
        assert len(events) == 10  # int(0.25 * 40)
        assert all(timeline == [(12, 4)] for timeline in events.values())
        assert events == plan.crash_events_for(40)
        # A different plan seed crashes a different subset.
        other = FaultPlan(seed=8, crash_fraction=0.25, crash_round=12,
                          crash_recovery=4)
        assert set(other.crash_events_for(40)) != set(events)

    def test_explicit_and_fraction_crashes_merge_sorted(self):
        plan = FaultPlan(seed=0, crashes={0: CrashEvent(50)},
                         crash_fraction=1.0, crash_round=10)
        events = plan.crash_events_for(4)
        assert events[0] == [(10, None), (50, None)]

    def test_wake_schedule_bounds_and_determinism(self):
        plan = FaultPlan(seed=5, max_wake_skew=6)
        schedule = plan.wake_schedule_for(200)
        assert set(schedule) == set(range(200))
        assert all(0 <= offset <= 6 for offset in schedule.values())
        assert len(set(schedule.values())) > 1  # actually skewed
        assert schedule == plan.wake_schedule_for(200)
        assert FaultPlan(seed=5).wake_schedule_for(200) is None


class TestFaultRoll:
    def test_uniform_range_and_determinism(self):
        draws = [fault_roll(1, r, n, DROP_SALT)
                 for r in range(20) for n in range(20)]
        assert all(0.0 <= draw < 1.0 for draw in draws)
        assert fault_roll(1, 3, 4, DROP_SALT) == fault_roll(1, 3, 4, DROP_SALT)

    def test_salts_decorrelate_draws(self):
        assert fault_roll(1, 3, 4, DROP_SALT) != fault_roll(1, 3, 4, JAM_SALT)
        assert fault_roll(1, 3, 4, DROP_SALT) != fault_roll(2, 3, 4, DROP_SALT)
        assert fault_roll(1, 3, 4, DROP_SALT) != fault_roll(1, 4, 4, DROP_SALT)
        assert fault_roll(1, 3, 4, DROP_SALT) != fault_roll(1, 3, 5, DROP_SALT)

    def test_roughly_uniform(self):
        draws = [fault_roll(9, r, n, JAM_SALT)
                 for r in range(100) for n in range(10)]
        mean = sum(draws) / len(draws)
        assert 0.45 < mean < 0.55


class TestSpecGrammar:
    def test_full_spec_round_trip(self):
        plan = parse_fault_spec(
            "drop=0.05, jam=10..20@0.5, crash=0.2@64+32, wake=8, seed=3"
        )
        assert plan == FaultPlan(
            seed=3,
            drop_p=0.05,
            jams=(JamWindow(10, 20, 0.5),),
            crash_fraction=0.2,
            crash_round=64,
            crash_recovery=32,
            max_wake_skew=8,
        )

    def test_explicit_node_crashes_accumulate(self):
        plan = parse_fault_spec("crash=2:10+8,crash=7:15")
        assert plan.crashes == (
            (2, (CrashEvent(10, 8),)),
            (7, (CrashEvent(15),)),
        )

    def test_joined_jam_windows(self):
        plan = parse_fault_spec("jam=0..8+20..24@0.5")
        assert plan.jams == (JamWindow(0, 8), JamWindow(20, 24, 0.5))

    def test_empty_fragments_are_skipped(self):
        assert parse_fault_spec("drop=0.1,,  ,").drop_p == 0.1

    @pytest.mark.parametrize(
        "spec, detail",
        [
            ("drop=bogus", "must be a number"),
            ("jam=5", "START..STOP"),
            ("crash=5", "FRAC@ROUND"),
            ("drop", "key=value"),
            ("zap=1", "unknown key"),
        ],
    )
    def test_errors_name_the_fragment(self, spec, detail):
        with pytest.raises(ConfigurationError, match=detail) as excinfo:
            parse_fault_spec(spec)
        assert "--faults fragment" in str(excinfo.value)

    def test_parsed_values_hit_plan_validation(self):
        # Range/sign checks live in the plan constructors; the parser
        # still surfaces them as ConfigurationError.
        with pytest.raises(ConfigurationError, match="crash round"):
            parse_fault_spec("crash=0.5@-3")
