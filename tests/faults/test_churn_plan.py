"""ChurnPlan construction, noop normalization, deterministic event
materialization, and the churn/join/leave ``--faults`` grammar."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import ChurnPlan, FaultPlan, parse_fault_spec
from repro.faults.churn import _materialize
from repro.faults.spec import FAULT_SPEC_GRAMMAR
from repro.graphs import gnp_random_graph


class TestValidation:
    @pytest.mark.parametrize("edge_p", [-0.1, 1.5])
    def test_edge_probability_range(self, edge_p):
        with pytest.raises(ConfigurationError, match="edge probability"):
            ChurnPlan(edge_p=edge_p)

    @pytest.mark.parametrize("start", [-1, 2.5, True])
    def test_start_round_nonnegative_int(self, start):
        with pytest.raises(ConfigurationError, match="start round"):
            ChurnPlan(start=start)

    def test_stop_before_start_rejected(self):
        with pytest.raises(ConfigurationError, match="stop round"):
            ChurnPlan(start=10, stop=5)

    @pytest.mark.parametrize("entry", [(5,), (-1, 3), (5, 0), (2.5, 1)])
    def test_join_entries_validated(self, entry):
        with pytest.raises(ConfigurationError, match="join entries"):
            ChurnPlan(joins=(entry,))

    @pytest.mark.parametrize("entry", [(5,), (-1, 3), (2, -4)])
    def test_leave_entries_validated(self, entry):
        with pytest.raises(ConfigurationError, match="leave entries"):
            ChurnPlan(leaves=(entry,))

    def test_leave_fraction_range(self):
        with pytest.raises(ConfigurationError, match="leave fraction"):
            ChurnPlan(leave_fraction=1.2)

    def test_join_degree_nonnegative(self):
        with pytest.raises(ConfigurationError, match="join degree"):
            ChurnPlan(join_degree=-1)


class TestNormalization:
    def test_default_plan_is_noop(self):
        assert ChurnPlan().is_noop
        assert FaultPlan(churn=ChurnPlan()).is_noop
        assert not FaultPlan(churn=ChurnPlan()).has_churn

    def test_zero_rate_window_is_noop(self):
        # edge_p=0 over a real window schedules nothing.
        assert ChurnPlan(edge_p=0.0, start=5, stop=50).is_noop

    def test_empty_window_is_noop(self):
        assert ChurnPlan(edge_p=0.5, start=10, stop=10).is_noop

    @pytest.mark.parametrize(
        "plan",
        [
            ChurnPlan(edge_p=0.1, stop=20),
            ChurnPlan(joins=((5, 2),)),
            ChurnPlan(leaves=((0, 5),)),
            ChurnPlan(leave_fraction=0.25, leave_round=8),
        ],
    )
    def test_any_churn_defeats_noop(self, plan):
        assert not plan.is_noop
        assert FaultPlan(churn=plan).has_churn

    def test_describe_mentions_every_event_kind(self):
        plan = ChurnPlan(
            edge_p=0.01,
            start=10,
            stop=200,
            joins=((50, 4),),
            leaves=((3, 60),),
            leave_fraction=0.1,
            leave_round=70,
        )
        text = plan.describe()
        assert "churn=0.01@10..200" in text
        assert "join=4@50" in text
        assert "leave=3:60" in text
        assert "leave=0.1@70" in text
        assert ChurnPlan().describe() == "no churn"

    def test_plans_hashable(self):
        plan = ChurnPlan(edge_p=0.1, stop=20, joins=((5, 2),))
        assert hash(plan) == hash(
            ChurnPlan(edge_p=0.1, stop=20, joins=((5, 2),))
        )


class TestMaterialization:
    def test_deterministic_in_plan_and_seed(self):
        graph = gnp_random_graph(24, 0.2, seed=1)
        plan = ChurnPlan(edge_p=0.3, start=0, stop=60, joins=((10, 2),))
        first = _materialize(plan, 7, graph)
        again = _materialize(plan, 7, graph)
        assert first == again
        other_seed = _materialize(plan, 8, graph)
        assert first != other_seed

    def test_events_sorted_with_leaves_before_joins(self):
        graph = gnp_random_graph(16, 0.3, seed=2)
        plan = ChurnPlan(joins=((5, 1),), leaves=((3, 5),))
        events, total, leave_rounds = _materialize(plan, 0, graph)
        assert [event[0] for event in events] == ["leave", "join"]
        assert total == 17  # one joiner gets the next free id
        assert events[1][2] == 16
        assert leave_rounds == {3: 5}

    def test_earliest_explicit_leave_wins(self):
        graph = gnp_random_graph(10, 0.3, seed=3)
        plan = ChurnPlan(leaves=((4, 20), (4, 6)))
        _, _, leave_rounds = _materialize(plan, 0, graph)
        assert leave_rounds == {4: 6}

    def test_leave_fraction_samples_expected_count(self):
        graph = gnp_random_graph(20, 0.2, seed=4)
        plan = ChurnPlan(leave_fraction=0.25, leave_round=9)
        _, _, leave_rounds = _materialize(plan, 1, graph)
        assert len(leave_rounds) == 5
        assert set(leave_rounds.values()) == {9}

    def test_toggle_endpoints_are_live_ordered_pairs(self):
        graph = gnp_random_graph(12, 0.3, seed=5)
        plan = ChurnPlan(edge_p=1.0, start=0, stop=40, leaves=((0, 0),))
        events, _, _ = _materialize(plan, 2, graph)
        toggles = [event for event in events if event[0] == "toggle"]
        assert toggles  # p=1 over 40 rounds must fire
        for _, _, u, v in toggles:
            assert u < v
            assert 0 not in (u, v)  # node 0 left in round 0


class TestSpecGrammar:
    def test_churn_spec_round_trip(self):
        plan = parse_fault_spec("churn=0.01@10..200,join=4@50,leave=3:60,seed=7")
        assert plan == FaultPlan(
            seed=7,
            churn=ChurnPlan(
                edge_p=0.01, start=10, stop=200, joins=((50, 4),), leaves=((3, 60),)
            ),
        )

    def test_leave_fraction_spec(self):
        plan = parse_fault_spec("leave=0.2@30")
        assert plan.churn == ChurnPlan(leave_fraction=0.2, leave_round=30)

    def test_join_waves_accumulate(self):
        plan = parse_fault_spec("join=2@10,join=3@40")
        assert plan.churn.joins == ((10, 2), (40, 3))

    def test_churn_composes_with_static_faults(self):
        plan = parse_fault_spec("drop=0.05,churn=0.02@0..50,wake=4")
        assert plan.drop_p == 0.05
        assert plan.max_wake_skew == 4
        assert plan.churn.edge_p == 0.02

    def test_no_churn_keys_leaves_churn_none(self):
        # Pre-churn specs still parse to churn=None, keeping their
        # canonical cache keys (trial_key drops a None churn field).
        assert parse_fault_spec("drop=0.1,crash=0.2@30").churn is None

    @pytest.mark.parametrize(
        "spec, detail",
        [
            ("churn=0.01", "EDGEP@START..STOP"),
            ("churn=0.01@50", "EDGEP@START..STOP"),
            ("churn=lots@0..50", "churn edge probability"),
            ("churn=0.01@x..50", "churn start"),
            ("churn=0.01@0..y", "churn stop"),
            ("join=4", "N@ROUND"),
            ("join=many@50", "join count"),
            ("join=4@soon", "join round"),
            ("leave=5", "NODE:ROUND or FRAC@ROUND"),
            ("leave=a:10", "leave node"),
            ("leave=0.5@never", "leave round"),
        ],
    )
    def test_errors_name_the_fragment_and_echo_grammar(self, spec, detail):
        with pytest.raises(ConfigurationError, match=detail) as excinfo:
            parse_fault_spec(spec)
        message = str(excinfo.value)
        # The offending fragment is quoted verbatim...
        assert f"bad --faults fragment {spec!r}" in message
        # ...and the full grammar rides along, so the error is
        # self-diagnosing without docs at hand.
        assert FAULT_SPEC_GRAMMAR in message

    def test_parsed_values_hit_plan_validation(self):
        with pytest.raises(ConfigurationError, match="stop round"):
            parse_fault_spec("churn=0.01@50..10")
        with pytest.raises(ConfigurationError, match="edge probability"):
            parse_fault_spec("churn=1.5@0..10")
