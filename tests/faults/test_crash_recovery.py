"""Engine-level crash–recovery semantics and fault-plan edge cases.

Every scenario runs through *both* engines (the optimized hot path and
the frozen reference) — equality between them is part of each assertion
set, extending the golden bit-identity contract to faulty runs.
"""

import pytest

from repro.analysis.runner import run_trials
from repro.core import CDMISProtocol
from repro.constants import ConstantsProfile
from repro.faults import CrashEvent, FaultPlan
from repro.graphs import empty_graph, gnp_random_graph, path_graph
from repro.radio import CD, Listen, Transmit, run_protocol
from repro.radio._engine_reference import run_protocol_reference
from tests.radio.test_engine import ScriptProtocol

FAST = ConstantsProfile.fast()


def run_both(graph, protocol, model, seed, **kwargs):
    reference = run_protocol_reference(graph, protocol, model, seed=seed, **kwargs)
    optimized = run_protocol(graph, protocol, model, seed=seed, **kwargs)
    assert optimized == reference
    return optimized


class TestRecoverySemantics:
    def test_recovered_node_replays_from_scratch(self):
        protocol = ScriptProtocol({0: [Listen()] * 4})
        plan = FaultPlan(crashes={0: CrashEvent(2, 3)})
        result = run_both(empty_graph(1), protocol, CD, 0, faults=plan)
        stats = result.node_stats[0]
        assert stats.restarts == 1
        assert stats.last_restart_round == 5  # crash at 2, +3 delay
        assert not stats.crashed  # it came back
        assert 0 in result.restarted_nodes
        # Fresh protocol state: the restarted incarnation records all
        # four of its listens; energy counts both incarnations' rounds
        # (2 listens before the crash + 4 after).
        assert len(result.node_info[0]["seen"]) == 4
        assert stats.listen_rounds == 6
        assert stats.finish_round == 9

    def test_crash_stop_still_terminal(self):
        protocol = ScriptProtocol({0: [Listen()] * 4})
        plan = FaultPlan(crashes={0: CrashEvent(2)})
        result = run_both(empty_graph(1), protocol, CD, 0, faults=plan)
        stats = result.node_stats[0]
        assert stats.crashed
        assert stats.restarts == 0
        assert stats.last_restart_round == -1
        assert stats.listen_rounds == 2

    def test_crash_at_round_zero_with_recovery(self):
        protocol = ScriptProtocol({0: [Transmit(9)], 1: [Listen(), Listen(), Listen()]})
        plan = FaultPlan(crashes={0: CrashEvent(0, 2)})
        result = run_both(path_graph(2), protocol, CD, 0, faults=plan)
        # Node 0's transmit is pre-empted by the round-0 crash, then
        # replayed by the restarted incarnation at round 2.
        assert result.node_info[1]["seen"] == ["silence", "silence", "message(9)"]
        assert result.node_stats[0].restarts == 1

    def test_multiple_crash_recovery_cycles_on_one_node(self):
        protocol = ScriptProtocol({0: [Listen()] * 3})
        plan = FaultPlan(
            crashes={0: [CrashEvent(1, 2), CrashEvent(4, 2)]}
        )
        result = run_both(empty_graph(1), protocol, CD, 0, faults=plan)
        stats = result.node_stats[0]
        # Timeline: listen@0, crash@1, restart@3, listen@3, crash@4,
        # restart@6, listens@6..8.
        assert stats.restarts == 2
        assert stats.last_restart_round == 6
        assert not stats.crashed
        assert stats.listen_rounds == 5

    def test_recovery_then_crash_stop(self):
        protocol = ScriptProtocol({0: [Listen()] * 5})
        plan = FaultPlan(
            crashes={0: [CrashEvent(1, 2), CrashEvent(4)]}
        )
        result = run_both(empty_graph(1), protocol, CD, 0, faults=plan)
        stats = result.node_stats[0]
        assert stats.restarts == 1
        assert stats.crashed
        assert stats.finish_round == 4

    def test_crash_before_wake_is_fatal_while_asleep(self):
        protocol = ScriptProtocol({0: [Listen()] * 2})
        plan = FaultPlan(crashes={0: CrashEvent(4)})
        result = run_both(
            empty_graph(1), protocol, CD, 0, faults=plan,
            wake_schedule={0: 10},
        )
        stats = result.node_stats[0]
        assert stats.crashed
        assert stats.awake_rounds == 0  # never got to act
        assert stats.finish_round == 4

    def test_crash_after_termination_is_noop(self):
        protocol = ScriptProtocol({0: [Listen()]})
        plan = FaultPlan(crashes={0: CrashEvent(100, 5)})
        result = run_both(empty_graph(1), protocol, CD, 0, faults=plan)
        assert not result.node_stats[0].crashed
        assert result.node_stats[0].restarts == 0

    def test_restart_rngs_differ_from_first_incarnation(self):
        class CoinFlipper(ScriptProtocol):
            def run(self, ctx):
                ctx.info["coins"] = [ctx.rng.random() for _ in range(3)]
                for _ in range(4):
                    yield Listen()

        plan = FaultPlan(crashes={0: CrashEvent(2, 2)})
        with_faults = run_both(
            empty_graph(1), CoinFlipper({}), CD, 7, faults=plan
        )
        without = run_both(empty_graph(1), CoinFlipper({}), CD, 7)
        assert with_faults.node_info[0]["coins"] != without.node_info[0]["coins"]


class TestNoopNormalization:
    def test_noop_plan_is_bit_identical_to_no_plan(self):
        graph = gnp_random_graph(30, 0.2, seed=5)
        protocol = CDMISProtocol(constants=FAST)
        baseline = run_protocol(graph, protocol, CD, seed=5)
        assert run_protocol(
            graph, protocol, CD, seed=5, faults=FaultPlan(seed=99)
        ) == baseline

    def test_real_protocol_recovery_is_measured_not_hidden(self):
        # Recovery is *allowed* to break independence (a restarted node
        # can win next to an already-committed MIS member) — the
        # degradation metric must agree with the boolean check either
        # way, and both engines must agree on the whole result.
        graph = gnp_random_graph(30, 0.2, seed=2)
        plan = FaultPlan(seed=2, crash_fraction=0.2, crash_round=10,
                         crash_recovery=8)
        result = run_both(
            graph, CDMISProtocol(constants=FAST), CD, 2, faults=plan
        )
        assert result.restarted_nodes
        violation_rate = result.independence_violation_rate()
        assert (violation_rate > 0.0) == (not result.surviving_mis_independent())


class TestBatteryDeterminism:
    @pytest.mark.parametrize(
        "plan",
        [
            FaultPlan(seed=1, drop_p=0.03),
            FaultPlan(seed=1, crash_fraction=0.2, crash_round=8,
                      crash_recovery=6, max_wake_skew=2),
        ],
        ids=["drop", "crash-recovery+skew"],
    )
    def test_sequential_and_pool_agree_under_faults(self, plan):
        def battery(jobs):
            return run_trials(
                lambda seed: gnp_random_graph(24, 0.25, seed=seed),
                CDMISProtocol(constants=FAST),
                CD,
                seeds=range(6),
                jobs=jobs,
                faults=plan,
            ).outcomes

        assert battery(1) == battery(2)
