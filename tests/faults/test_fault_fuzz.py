"""Deterministic fuzz: random fault plans × random graphs × both engines.

Two properties, checked on every generated case:

1. **bit identity** — the optimized engine and the frozen reference
   engine produce equal results (or raise the same watchdog error) for
   every fault plan, extending the golden contract to faulty runs;
2. **MIS validity on survivors** — for *crash-stop-only* plans (no
   channel faults, no recovery, no wake skew) the surviving MIS is
   independent.  Channel faults and recovery are allowed to violate it —
   that degradation is measured, not asserted away.

Runs under the ``repro-ci`` Hypothesis profile (derandomized) in CI, so
the explored cases are reproducible; a failing example's plan prints via
``FaultPlan.describe`` in the Hypothesis falsifying-example output.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import ConstantsProfile
from repro.core import CDMISProtocol, NoCDEnergyMISProtocol
from repro.errors import SimulationError
from repro.faults import CrashEvent, FaultPlan, JamWindow
from repro.graphs import gnp_random_graph
from repro.radio import CD, NO_CD, run_protocol
from repro.radio._engine_reference import run_protocol_reference

FAST = ConstantsProfile.fast()

crash_events = st.lists(
    st.builds(
        CrashEvent,
        round=st.integers(min_value=0, max_value=60),
        recovery_delay=st.one_of(st.none(), st.integers(1, 12)),
    ),
    min_size=1,
    max_size=2,
)

fault_plans = st.builds(
    FaultPlan,
    seed=st.integers(min_value=0, max_value=2**32),
    drop_p=st.sampled_from([0.0, 0.02, 0.1]),
    jams=st.lists(
        st.builds(
            JamWindow,
            start=st.integers(0, 30),
            stop=st.integers(31, 80),
            probability=st.sampled_from([0.3, 1.0]),
        ),
        max_size=2,
    ).map(tuple),
    crashes=st.dictionaries(
        st.integers(min_value=0, max_value=30), crash_events, max_size=3
    ),
    crash_fraction=st.sampled_from([0.0, 0.15]),
    crash_round=st.integers(0, 40),
    crash_recovery=st.one_of(st.none(), st.sampled_from([4, 16])),
    max_wake_skew=st.integers(0, 3),
)

graphs = st.builds(
    gnp_random_graph,
    st.integers(min_value=6, max_value=24),
    st.sampled_from([0.12, 0.25, 0.4]),
    seed=st.integers(0, 1000),
)


def run_or_watchdog(engine, graph, protocol, model, seed, plan, budget):
    try:
        return engine(
            graph, protocol, model, seed=seed, max_rounds=budget, faults=plan
        )
    except SimulationError:
        # Faults may legitimately stall a protocol; both engines must
        # stall identically.
        return "watchdog"


@settings(max_examples=40, deadline=None)
@given(graph=graphs, plan=fault_plans, seed=st.integers(0, 50))
def test_fuzzed_plans_bit_identical(graph, plan, seed):
    protocol = CDMISProtocol(constants=FAST)
    hint = protocol.max_rounds_hint(graph.num_nodes, max(graph.max_degree(), 1))
    budget = 6 * (hint or 200) + 200
    reference = run_or_watchdog(
        run_protocol_reference, graph, protocol, CD, seed, plan, budget
    )
    optimized = run_or_watchdog(
        run_protocol, graph, protocol, CD, seed, plan, budget
    )
    assert optimized == reference, plan.describe()


crash_stop_plans = st.builds(
    FaultPlan,
    seed=st.integers(min_value=0, max_value=2**32),
    crashes=st.dictionaries(
        st.integers(min_value=0, max_value=30),
        st.builds(CrashEvent, round=st.integers(0, 60)),
        max_size=4,
    ),
    crash_fraction=st.sampled_from([0.0, 0.2]),
    crash_round=st.integers(0, 40),
)


@settings(max_examples=25, deadline=None)
@given(graph=graphs, plan=crash_stop_plans, seed=st.integers(0, 50))
def test_crash_stop_preserves_survivor_independence(graph, plan, seed):
    for protocol, model in (
        (CDMISProtocol(constants=FAST), CD),
        (NoCDEnergyMISProtocol(constants=FAST), NO_CD),
    ):
        result = run_protocol(graph, protocol, model, seed=seed, faults=plan)
        assert result.surviving_mis_independent(), plan.describe()
