"""Per-channel jamming: the ``:CH`` spec suffix, window semantics, and
bit-identity of channel-targeted jams through both scalar engines."""

import pytest

from repro.baselines import MultichannelMISProtocol
from repro.constants import ConstantsProfile
from repro.errors import ConfigurationError
from repro.faults import FaultPlan, JamWindow, parse_fault_spec
from repro.faults.spec import FAULT_SPEC_GRAMMAR
from repro.graphs import gnp_random_graph
from repro.radio import CD, run_protocol
from repro.radio._engine_reference import run_protocol_reference
from repro.radio.models import MultichannelModel

FAST = ConstantsProfile.fast()


class TestGrammar:
    def test_channel_suffix_after_probability(self):
        plan = parse_fault_spec("jam=10..20@0.5:2")
        assert plan.jams == (JamWindow(10, 20, 0.5, channel=2),)

    def test_channel_suffix_without_probability(self):
        plan = parse_fault_spec("jam=10..20:3")
        assert plan.jams == (JamWindow(10, 20, 1.0, channel=3),)

    def test_legacy_spec_jams_all_channels(self):
        # @P binds to its own window; the bare window keeps the default.
        plan = parse_fault_spec("jam=0..8+20..24@0.5")
        assert plan.jams == (
            JamWindow(0, 8, 1.0, channel=None),
            JamWindow(20, 24, 0.5, channel=None),
        )

    def test_channel_suffix_per_window(self):
        plan = parse_fault_spec("jam=0..8@1:0+20..24@0.5:1")
        assert plan.jams == (
            JamWindow(0, 8, 1.0, channel=0),
            JamWindow(20, 24, 0.5, channel=1),
        )

    def test_spec_round_trips_through_describe(self):
        plan = parse_fault_spec("jam=10..20@0.5:2")
        assert "jam=10..20@0.5:2" in plan.describe()

    @pytest.mark.parametrize(
        "spec, detail",
        [
            ("jam=10..20@0.5:x", "jam channel"),
            ("jam=10..20:1.5", "jam channel"),
            ("jam=10:2", "START..STOP"),
        ],
    )
    def test_errors_echo_fragment_and_grammar(self, spec, detail):
        with pytest.raises(ConfigurationError) as excinfo:
            parse_fault_spec(spec)
        message = str(excinfo.value)
        assert spec in message  # the offending fragment, verbatim
        assert detail in message
        assert FAULT_SPEC_GRAMMAR in message

    def test_negative_channel_rejected(self):
        with pytest.raises(ConfigurationError, match="jam channel"):
            parse_fault_spec("jam=10..20:-1")


class TestWindowSemantics:
    def test_covers_respects_channel(self):
        window = JamWindow(0, 10, channel=2)
        assert window.covers(5, 0, channel=2)
        assert not window.covers(5, 0, channel=1)
        assert not window.covers(5, 0)  # single-channel perceiver

    def test_all_channel_window_covers_everything(self):
        window = JamWindow(0, 10)
        for channel in (0, 1, 7):
            assert window.covers(5, 0, channel=channel)

    @pytest.mark.parametrize("channel", [-1, 1.5, True, "2"])
    def test_bad_channel_rejected(self, channel):
        with pytest.raises(ConfigurationError, match="jam channel"):
            JamWindow(0, 10, channel=channel)


class TestEngineBitIdentity:
    """Channel-targeted jams perturb both engines identically."""

    @pytest.mark.parametrize("seed", [0, 1])
    @pytest.mark.parametrize(
        "plan",
        [
            FaultPlan(jams=(JamWindow(2, 30, 0.6, channel=1),)),
            FaultPlan(jams=(JamWindow(0, 40, channel=0),), seed=3),
            FaultPlan(
                jams=(
                    JamWindow(0, 20, 0.5, channel=2),
                    JamWindow(10, 50, 0.3),
                ),
            ),
        ],
        ids=["one-channel", "channel-zero", "mixed"],
    )
    def test_jammed_multichannel_run_is_golden(self, plan, seed):
        graph = gnp_random_graph(30, 0.25, seed=5)
        protocol = MultichannelMISProtocol(constants=FAST, channels=4)
        model = MultichannelModel(CD, 4)
        reference = run_protocol_reference(
            graph, protocol, model, seed=seed, faults=plan
        )
        optimized = run_protocol(graph, protocol, model, seed=seed, faults=plan)
        assert optimized == reference

    def test_off_channel_jam_is_inert(self):
        # Jamming a channel nobody ever tunes to must not change the run.
        graph = gnp_random_graph(30, 0.25, seed=5)
        protocol = MultichannelMISProtocol(constants=FAST, channels=2)
        model = MultichannelModel(CD, 2)
        jammed = FaultPlan(jams=(JamWindow(0, 500, channel=9),))
        baseline = run_protocol(graph, protocol, model, seed=0)
        perturbed = run_protocol(graph, protocol, model, seed=0, faults=jammed)
        assert perturbed == baseline
